#include <gtest/gtest.h>

#include <set>

#include "common/combinatorics.h"
#include "module/module_library.h"
#include "module/table_module.h"

namespace provview {
namespace {

CatalogPtr BoolCatalog(int n) {
  auto catalog = std::make_shared<AttributeCatalog>();
  for (int i = 0; i < n; ++i) catalog->Add("a" + std::to_string(i));
  return catalog;
}

TEST(ModuleTest, GateTruthTables) {
  auto catalog = BoolCatalog(4);
  ModulePtr and_mod = MakeAnd("and", catalog, {0, 1}, 2);
  EXPECT_EQ(and_mod->Eval({1, 1}), (Tuple{1}));
  EXPECT_EQ(and_mod->Eval({1, 0}), (Tuple{0}));
  ModulePtr or_mod = MakeOr("or", catalog, {0, 1}, 2);
  EXPECT_EQ(or_mod->Eval({0, 0}), (Tuple{0}));
  EXPECT_EQ(or_mod->Eval({0, 1}), (Tuple{1}));
  ModulePtr xor_mod = MakeParity("xor", catalog, {0, 1}, 2);
  EXPECT_EQ(xor_mod->Eval({1, 1}), (Tuple{0}));
  EXPECT_EQ(xor_mod->Eval({1, 0}), (Tuple{1}));
}

TEST(ModuleTest, Fig1M1MatchesPaperTable) {
  auto catalog = BoolCatalog(5);
  ModulePtr m1 = MakeFig1M1(catalog, 0, 1, 2, 3, 4);
  // Figure 1c: rows (a1 a2 | a3 a4 a5).
  EXPECT_EQ(m1->Eval({0, 0}), (Tuple{0, 1, 1}));
  EXPECT_EQ(m1->Eval({0, 1}), (Tuple{1, 1, 0}));
  EXPECT_EQ(m1->Eval({1, 0}), (Tuple{1, 1, 0}));
  EXPECT_EQ(m1->Eval({1, 1}), (Tuple{1, 0, 1}));
}

TEST(ModuleTest, MajorityThreshold) {
  auto catalog = BoolCatalog(5);
  ModulePtr maj = MakeMajority("maj", catalog, {0, 1, 2, 3}, 4);
  EXPECT_EQ(maj->Eval({0, 0, 0, 0}), (Tuple{0}));
  EXPECT_EQ(maj->Eval({1, 0, 0, 0}), (Tuple{0}));
  EXPECT_EQ(maj->Eval({1, 1, 0, 0}), (Tuple{1}));  // >= k of 2k
  EXPECT_EQ(maj->Eval({1, 1, 1, 1}), (Tuple{1}));
}

TEST(ModuleTest, IdentityAndNegation) {
  auto catalog = BoolCatalog(4);
  ModulePtr id = MakeIdentity("id", catalog, {0, 1}, {2, 3});
  EXPECT_EQ(id->Eval({1, 0}), (Tuple{1, 0}));
  ModulePtr neg = MakeNegation("neg", catalog, {0, 1}, {2, 3});
  EXPECT_EQ(neg->Eval({1, 0}), (Tuple{0, 1}));
  EXPECT_TRUE(id->IsInjective());
  EXPECT_TRUE(neg->IsInjective());
}

TEST(ModuleTest, ConstantIgnoresInput) {
  auto catalog = BoolCatalog(4);
  ModulePtr c = MakeConstant("const", catalog, {0, 1}, {2, 3}, {1, 0});
  EXPECT_EQ(c->Eval({0, 0}), (Tuple{1, 0}));
  EXPECT_EQ(c->Eval({1, 1}), (Tuple{1, 0}));
  EXPECT_FALSE(c->IsInjective());
}

TEST(ModuleTest, RandomBijectionIsInjectiveAndDeterministic) {
  auto catalog = BoolCatalog(6);
  Rng rng1(5), rng2(5);
  ModulePtr b1 = MakeRandomBijection("b", catalog, {0, 1, 2}, {3, 4, 5}, &rng1);
  ModulePtr b2 = MakeRandomBijection("b", catalog, {0, 1, 2}, {3, 4, 5}, &rng2);
  EXPECT_TRUE(b1->IsInjective());
  MixedRadixCounter c({2, 2, 2});
  do {
    EXPECT_EQ(b1->Eval(c.values()), b2->Eval(c.values()));
  } while (c.Advance());
}

TEST(ModuleTest, ShiftBijectionWrapsModuloRange) {
  auto catalog = BoolCatalog(4);
  ModulePtr s = MakeShiftBijection("s", catalog, {0, 1}, {2, 3}, 1);
  EXPECT_TRUE(s->IsInjective());
  // code(0,0)=0 -> 1 -> decode (1,0).
  EXPECT_EQ(s->Eval({0, 0}), (Tuple{1, 0}));
  // last code wraps to 0.
  EXPECT_EQ(s->Eval({1, 1}), (Tuple{0, 0}));
}

TEST(ModuleTest, RandomFunctionCoversDomain) {
  auto catalog = BoolCatalog(4);
  Rng rng(11);
  ModulePtr f = MakeRandomFunction("f", catalog, {0, 1}, {2, 3}, &rng);
  Relation rel = f->FullRelation();
  EXPECT_EQ(rel.num_rows(), 4);
  EXPECT_TRUE(rel.SatisfiesFd({0, 1}, {2, 3}));
}

TEST(ModuleTest, FullRelationShapeAndFd) {
  auto catalog = BoolCatalog(5);
  ModulePtr m1 = MakeFig1M1(catalog, 0, 1, 2, 3, 4);
  Relation rel = m1->FullRelation();
  EXPECT_EQ(rel.num_rows(), 4);
  EXPECT_EQ(rel.schema().arity(), 5);
  EXPECT_TRUE(rel.SatisfiesFd({0, 1}, {2, 3, 4}));
  EXPECT_EQ(m1->DomainSize(), 4);
  EXPECT_EQ(m1->RangeSize(), 8);
  EXPECT_EQ(m1->arity(), 5);
}

TEST(ModuleTest, AttrSets) {
  auto catalog = BoolCatalog(5);
  ModulePtr m1 = MakeFig1M1(catalog, 0, 1, 2, 3, 4);
  EXPECT_EQ(m1->InputSet().ToVector(), (std::vector<int>{0, 1}));
  EXPECT_EQ(m1->OutputSet().ToVector(), (std::vector<int>{2, 3, 4}));
  EXPECT_EQ(m1->AttrSet().count(), 5);
}

TEST(ModuleTest, PublicFlagAndPrivatizationCost) {
  auto catalog = BoolCatalog(3);
  ModulePtr m = MakeAnd("and", catalog, {0, 1}, 2);
  EXPECT_FALSE(m->is_public());
  m->set_public(true);
  m->set_privatization_cost(3.5);
  EXPECT_TRUE(m->is_public());
  EXPECT_DOUBLE_EQ(m->privatization_cost(), 3.5);
}

TEST(TableModuleTest, LookupAndSupplierCalls) {
  auto catalog = BoolCatalog(3);
  TableModule t("t", catalog, {0, 1}, {2},
                {{{0, 0}, {1}}, {{0, 1}, {0}}, {{1, 0}, {0}}, {{1, 1}, {1}}});
  EXPECT_EQ(t.supplier_calls(), 0);
  EXPECT_EQ(t.Eval({0, 0}), (Tuple{1}));
  EXPECT_EQ(t.Eval({1, 1}), (Tuple{1}));
  EXPECT_EQ(t.supplier_calls(), 2);
  t.ResetSupplierCalls();
  EXPECT_EQ(t.supplier_calls(), 0);
  EXPECT_TRUE(t.Defines({0, 1}));
  EXPECT_EQ(t.DefinedInputs().size(), 4u);
}

TEST(TableModuleTest, PartialFunctionOnlyListsGivenInputs) {
  auto catalog = BoolCatalog(3);
  TableModule t("t", catalog, {0, 1}, {2}, {{{0, 0}, {1}}});
  EXPECT_TRUE(t.Defines({0, 0}));
  EXPECT_FALSE(t.Defines({1, 1}));
}

TEST(TableModuleTest, FromRelationRoundTrip) {
  auto catalog = BoolCatalog(5);
  ModulePtr m1 = MakeFig1M1(catalog, 0, 1, 2, 3, 4);
  Relation rel = m1->FullRelation();
  ModulePtr t = TableModule::FromRelation("copy", rel, 2);
  MixedRadixCounter c({2, 2});
  do {
    EXPECT_EQ(t->Eval(c.values()), m1->Eval(c.values()));
  } while (c.Advance());
}

TEST(TableModuleTest, MaterializePreservesFlags) {
  auto catalog = BoolCatalog(3);
  ModulePtr m = MakeAnd("and", catalog, {0, 1}, 2);
  m->set_public(true);
  m->set_privatization_cost(9.0);
  ModulePtr t = TableModule::Materialize(*m);
  EXPECT_TRUE(t->is_public());
  EXPECT_DOUBLE_EQ(t->privatization_cost(), 9.0);
  EXPECT_EQ(t->Eval({1, 1}), (Tuple{1}));
}

}  // namespace
}  // namespace provview
