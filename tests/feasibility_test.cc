#include <gtest/gtest.h>

#include "secureview/feasibility.h"

namespace provview {
namespace {

SecureViewInstance CardInstance() {
  SecureViewInstance inst;
  inst.kind = ConstraintKind::kCardinality;
  inst.num_attrs = 6;
  inst.attr_cost = {5.0, 1.0, 2.0, 3.0, 1.0, 4.0};
  SvModule m0;
  m0.name = "m0";
  m0.inputs = {0, 1};
  m0.outputs = {2, 3};
  m0.card_options = {CardOption{2, 0}, CardOption{0, 1}};
  SvModule pub;
  pub.name = "pub";
  pub.is_public = true;
  pub.privatization_cost = 7.0;
  pub.inputs = {2};
  pub.outputs = {4};
  SvModule m2;
  m2.name = "m2";
  m2.inputs = {3, 4};
  m2.outputs = {5};
  m2.card_options = {CardOption{1, 1}};
  inst.modules = {m0, pub, m2};
  return inst;
}

SecureViewInstance SetInstance() {
  SecureViewInstance inst;
  inst.kind = ConstraintKind::kSet;
  inst.num_attrs = 4;
  inst.attr_cost = {1.0, 2.0, 3.0, 4.0};
  SvModule m;
  m.name = "m";
  m.inputs = {0, 1};
  m.outputs = {2, 3};
  m.set_options = {SetOption{{0}, {2}}, SetOption{{}, {3}}};
  inst.modules = {m};
  return inst;
}

TEST(FeasibilityTest, CardinalityModuleSatisfied) {
  SecureViewInstance inst = CardInstance();
  EXPECT_FALSE(ModuleSatisfied(inst, 0, Bitset64(6)));
  EXPECT_FALSE(ModuleSatisfied(inst, 0, Bitset64::Of(6, {0})));
  EXPECT_TRUE(ModuleSatisfied(inst, 0, Bitset64::Of(6, {0, 1})));  // (2,0)
  EXPECT_TRUE(ModuleSatisfied(inst, 0, Bitset64::Of(6, {2})));     // (0,1)
  EXPECT_TRUE(ModuleSatisfied(inst, 0, Bitset64::Of(6, {3})));
}

TEST(FeasibilityTest, SetModuleSatisfied) {
  SecureViewInstance inst = SetInstance();
  EXPECT_FALSE(ModuleSatisfied(inst, 0, Bitset64::Of(4, {0})));
  EXPECT_TRUE(ModuleSatisfied(inst, 0, Bitset64::Of(4, {0, 2})));
  EXPECT_TRUE(ModuleSatisfied(inst, 0, Bitset64::Of(4, {3})));
  // Supersets stay satisfied (Proposition 1).
  EXPECT_TRUE(ModuleSatisfied(inst, 0, Bitset64::All(4)));
}

TEST(FeasibilityTest, RequiredPrivatizations) {
  SecureViewInstance inst = CardInstance();
  EXPECT_TRUE(RequiredPrivatizations(inst, Bitset64(6)).empty());
  // attr 2 is the public module's input; attr 4 its output.
  EXPECT_EQ(RequiredPrivatizations(inst, Bitset64::Of(6, {2})),
            (std::vector<int>{1}));
  EXPECT_EQ(RequiredPrivatizations(inst, Bitset64::Of(6, {4})),
            (std::vector<int>{1}));
  EXPECT_TRUE(RequiredPrivatizations(inst, Bitset64::Of(6, {0, 5})).empty());
}

TEST(FeasibilityTest, CompleteSolutionPrivatizesCanonically) {
  SecureViewInstance inst = CardInstance();
  SecureViewSolution sol = CompleteSolution(inst, Bitset64::Of(6, {2, 3, 4}));
  EXPECT_EQ(sol.privatized, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(sol.TotalCost(inst), 2.0 + 3.0 + 1.0 + 7.0);
}

TEST(FeasibilityTest, IsFeasibleChecksBothConditions) {
  SecureViewInstance inst = CardInstance();
  // Hidden {3, 4, 5}: m0 satisfied via (0,1) (attr 3 hidden); m2 satisfied
  // via (1,1) (input 3 or 4, output 5); attr 4 touches the public module →
  // must privatize.
  SecureViewSolution sol;
  sol.hidden = Bitset64::Of(6, {3, 4, 5});
  EXPECT_FALSE(IsFeasible(inst, sol));  // missing privatization
  sol.privatized = {1};
  EXPECT_TRUE(IsFeasible(inst, sol));
  // Hidden {3} alone: m2 unsatisfied (no output hidden).
  SecureViewSolution sol2 = CompleteSolution(inst, Bitset64::Of(6, {3}));
  EXPECT_FALSE(IsFeasible(inst, sol2));
}

TEST(FeasibilityTest, UnsatisfiedModulesLists) {
  SecureViewInstance inst = CardInstance();
  EXPECT_EQ(UnsatisfiedModules(inst, Bitset64(6)),
            (std::vector<int>{0, 2}));
  EXPECT_EQ(UnsatisfiedModules(inst, Bitset64::Of(6, {2})),
            (std::vector<int>{2}));
  EXPECT_TRUE(
      UnsatisfiedModules(inst, Bitset64::Of(6, {2, 3, 5})).empty());
}

TEST(FeasibilityTest, CheapestAdditionCardinality) {
  SecureViewInstance inst = CardInstance();
  // For m0 from empty: option (2,0) costs 5+1 = 6; option (0,1) costs
  // min(c2, c3) = 2 → pick {2}.
  Bitset64 add = CheapestSatisfyingAddition(inst, 0, Bitset64(6));
  EXPECT_EQ(add, Bitset64::Of(6, {2}));
  // With attr 0 already hidden, option (2,0) needs only attr 1 (cost 1):
  // cheaper than hiding attr 2 (cost 2).
  Bitset64 add2 = CheapestSatisfyingAddition(inst, 0, Bitset64::Of(6, {0}));
  EXPECT_EQ(add2, Bitset64::Of(6, {1}));
}

TEST(FeasibilityTest, CheapestAdditionCountsOnlyMissing) {
  SecureViewInstance inst = CardInstance();
  // m2 requires (1,1): with attr 3 hidden, only attr 5 (output) missing...
  // outputs of m2 = {5} with cost 4; inputs {3,4}: 3 already hidden so the
  // input side is met; addition = {5}? No: option (1,1) needs 1 input AND
  // 1 output; input met by 3, output requires 5.
  Bitset64 add = CheapestSatisfyingAddition(inst, 2, Bitset64::Of(6, {3}));
  EXPECT_EQ(add, Bitset64::Of(6, {5}));
}

TEST(FeasibilityTest, CheapestAdditionSetConstraints) {
  SecureViewInstance inst = SetInstance();
  // Option {0,2} costs 1+3 = 4; option {3} costs 4 → tie broken by order;
  // accept either, but cost must be 4.
  Bitset64 add = CheapestSatisfyingAddition(inst, 0, Bitset64(4));
  EXPECT_DOUBLE_EQ(inst.AttrCost(add), 4.0);
  // With attr 0 pre-hidden, option {0,2} needs only attr 2 (cost 3).
  Bitset64 add2 = CheapestSatisfyingAddition(inst, 0, Bitset64::Of(4, {0}));
  EXPECT_EQ(add2, Bitset64::Of(4, {2}));
}

}  // namespace
}  // namespace provview
