// Unit tests of the feasible-set fixpoint (privacy/feasible_sets.h): pinned
// propagation through forced free modules, backward narrowing through fixed
// modules, unreachable-domain-point factoring, the termination bound, and
// the exactness of the enumeration that consumes the result.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "generators/families.h"
#include "module/module_library.h"
#include "privacy/feasible_sets.h"
#include "privacy/possible_worlds.h"

namespace provview {
namespace {

void ExpectIdenticalWorlds(const WorkflowWorlds& a, const WorkflowWorlds& b) {
  EXPECT_EQ(a.num_function_choices, b.num_function_choices);
  EXPECT_EQ(a.num_distinct_relations, b.num_distinct_relations);
  ASSERT_EQ(a.out_sets.size(), b.out_sets.size());
  for (size_t i = 0; i < a.out_sets.size(); ++i) {
    EXPECT_EQ(a.out_sets[i], b.out_sets[i]) << "module " << i;
  }
}

WorkflowWorlds Enumerate(const WorkflowTables& tables, const Bitset64& visible,
                         const std::vector<int>& fixed, bool use_fixpoint) {
  WorkflowEnumerationOptions opts;
  opts.max_candidates = int64_t{1} << 33;
  opts.use_feasible_sets = use_fixpoint;
  return EnumerateWorkflowWorlds(tables, visible, fixed, opts);
}

TEST(FeasibleSetsTest, ForcedPropagationCrossesVisibleFreeStages) {
  // 4-stage one-one chain, hide only layer 3: every stage above the hidden
  // layer is fully visible, so the fixpoint forces stages 1-2 (their slots
  // collapse to the original codes) and pins their outputs; stage 3 is
  // determined with pruned candidates, stage 4 stays non-determined.
  Rng rng(5);
  OneOneChain chain = MakeOneOneChain(4, 2, &rng);
  Bitset64 hidden(chain.catalog->size());
  for (AttrId id : chain.layer_attrs[3]) hidden.Set(id);
  Bitset64 visible = hidden.Complement();
  auto tables = BuildWorkflowTables(*chain.workflow);
  FeasibleSetAnalysis a = AnalyzeFeasibleSets(*tables, visible, {});

  EXPECT_TRUE(a.determined[0] && a.forced[0]);
  EXPECT_TRUE(a.determined[1] && a.forced[1]);
  EXPECT_TRUE(a.determined[2]);
  EXPECT_FALSE(a.forced[2]);  // hidden outputs keep all 4 candidates
  EXPECT_FALSE(a.determined[3]);
  // Forced stages pin their outputs.
  for (AttrId id : chain.layer_attrs[1]) EXPECT_TRUE(a.pinned_attr[id]);
  for (AttrId id : chain.layer_attrs[2]) EXPECT_TRUE(a.pinned_attr[id]);
  for (AttrId id : chain.layer_attrs[3]) EXPECT_FALSE(a.pinned_attr[id]);
  // Forced slots are singletons holding the original code.
  for (size_t k = 0; k < a.det_slot_codes[0].size(); ++k) {
    ASSERT_EQ(a.det_slot_codes[0][k].size(), 1u);
    EXPECT_EQ(a.det_slot_codes[0][k][0],
              tables->original_fn[0][static_cast<size_t>(
                  tables->orig_input_codes[0][k])]);
  }
  // Termination bound from the header: depth + 2 sweeps.
  EXPECT_LE(a.iterations, chain.workflow->Depth() + 2);

  // The enumeration consuming the analysis is exact.
  WorkflowWorlds on = Enumerate(*tables, visible, {}, true);
  WorkflowWorlds off = Enumerate(*tables, visible, {}, false);
  ExpectIdenticalWorlds(on, off);
  EXPECT_LT(on.pruned_candidates, off.pruned_candidates);
}

TEST(FeasibleSetsTest, BackwardNarrowingThroughFixedModuleForcesHiddenStage) {
  // x --free m1 (constant)--> t (hidden) --fixed m2 (negation)--> y
  // (visible). The view pins y to a single value; the fixed bijection pulls
  // that constraint backward to t, whose feasible set collapses to the
  // original constant — so m1 is forced although its outputs are hidden.
  auto catalog = std::make_shared<AttributeCatalog>();
  std::vector<AttrId> x, t, y;
  for (int i = 0; i < 2; ++i) x.push_back(catalog->Add("x" + std::to_string(i)));
  for (int i = 0; i < 2; ++i) t.push_back(catalog->Add("t" + std::to_string(i)));
  for (int i = 0; i < 2; ++i) y.push_back(catalog->Add("y" + std::to_string(i)));
  Workflow wf(catalog);
  wf.AddModule(MakeConstant("m1", catalog, x, t, Tuple{1, 0}));
  ModulePtr neg = MakeNegation("m2", catalog, t, y);
  neg->set_public(true);
  wf.AddModule(std::move(neg));
  PV_CHECK(wf.Validate().ok());

  Bitset64 hidden(catalog->size());
  for (AttrId id : t) hidden.Set(id);
  Bitset64 visible = hidden.Complement();
  auto tables = BuildWorkflowTables(wf);
  FeasibleSetAnalysis a = AnalyzeFeasibleSets(*tables, visible, {1});

  for (AttrId id : t) {
    EXPECT_EQ(a.feasible_values[id].size(), 1u) << "attr " << id;
    EXPECT_TRUE(a.pinned_attr[id]);
  }
  EXPECT_TRUE(a.forced[0]);
  EXPECT_LE(a.iterations, wf.Depth() + 2);

  WorkflowWorlds on = Enumerate(*tables, visible, {1}, true);
  WorkflowWorlds off = Enumerate(*tables, visible, {1}, false);
  ExpectIdenticalWorlds(on, off);
  // The fixpoint collapses the walk to the single consistent world; the
  // determined-input engine still walks the hidden stage at full range.
  EXPECT_EQ(on.pruned_candidates, 1);
  EXPECT_GT(off.pruned_candidates, 1);
}

TEST(FeasibleSetsTest, UnreachableDomainPointsOfFreeModulesAreFactored) {
  // m1 maps x to (t0_const, parity(x)): t0 is visibly constant, t1 is
  // hidden, so m1 is determined but not forced and m2 stays
  // non-determined. The fixpoint still proves every (t0 = !t0_const, *)
  // domain point of m2 unreachable in any consistent world and factors
  // those slots out of the walk. With t0_const = 1 the factored points are
  // m2's LOWEST domain codes, so the first walked slot starts as a
  // singleton and the enumerator must re-seat its sharding pivot — the
  // parallel run below exercises that path.
  for (int32_t t0_const : {0, 1}) {
    auto catalog = std::make_shared<AttributeCatalog>();
    std::vector<AttrId> x;
    for (int i = 0; i < 2; ++i) {
      x.push_back(catalog->Add("x" + std::to_string(i)));
    }
    AttrId t0 = catalog->Add("t0");
    AttrId t1 = catalog->Add("t1");
    AttrId u = catalog->Add("u");
    Workflow wf(catalog);
    wf.AddModule(std::make_unique<LambdaModule>(
        "m1", catalog, x, std::vector<AttrId>{t0, t1},
        [t0_const](const Tuple& in) {
          return Tuple{t0_const, in[0] ^ in[1]};
        }));
    wf.AddModule(MakeParity("m2", catalog, {t0, t1}, u));
    PV_CHECK(wf.Validate().ok());

    Bitset64 visible = Bitset64::All(catalog->size());
    visible.Reset(t1);
    auto tables = BuildWorkflowTables(wf);
    FeasibleSetAnalysis a = AnalyzeFeasibleSets(*tables, visible, {});

    EXPECT_TRUE(a.determined[0]);
    EXPECT_FALSE(a.forced[0]);
    EXPECT_FALSE(a.determined[1]);
    EXPECT_EQ(a.feasible_values[t0], (std::vector<int32_t>{t0_const}));
    EXPECT_EQ(a.feasible_values[t1].size(), 2u);
    EXPECT_EQ(a.factored_free_slots, 2);  // the (t0 = !t0_const, *) points
    ASSERT_EQ(a.feasible_in_codes[1].size(), 2u);

    // Exact against the naive reference and the base engine, sequentially
    // and with the walk sharded across a forced pool.
    WorkflowWorlds naive = EnumerateWorkflowWorldsNaive(wf, visible, {});
    WorkflowWorlds on = Enumerate(*tables, visible, {}, true);
    WorkflowWorlds off = Enumerate(*tables, visible, {}, false);
    ExpectIdenticalWorlds(naive, on);
    ExpectIdenticalWorlds(naive, off);
    EXPECT_LT(on.pruned_candidates, off.pruned_candidates);

    WorkflowEnumerationOptions parallel;
    parallel.max_candidates = int64_t{1} << 33;
    parallel.num_threads = 4;
    parallel.min_parallel_candidates = 0;
    WorkflowWorlds sharded =
        EnumerateWorkflowWorlds(*tables, visible, {}, parallel);
    ExpectIdenticalWorlds(naive, sharded);
  }
}

TEST(FeasibleSetsTest, OriginalValuesAlwaysSurvive) {
  // Randomized invariant sweep: on random visible sets of random deep
  // chains, every original value stays feasible, reached slots keep the
  // original code, and the sweep count respects the termination bound.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 53 + 9);
    OneOneChain chain = MakeOneOneChain(4, 1, &rng);
    Bitset64 visible(chain.catalog->size());
    for (int attr = 0; attr < chain.catalog->size(); ++attr) {
      if (rng.NextBernoulli(0.5)) visible.Set(attr);
    }
    auto tables = BuildWorkflowTables(*chain.workflow);
    FeasibleSetAnalysis a = AnalyzeFeasibleSets(*tables, visible, {});
    EXPECT_LE(a.iterations, chain.workflow->Depth() + 2) << "seed " << seed;
    for (int mi = 0; mi < tables->num_modules; ++mi) {
      for (const int32_t c : tables->orig_input_codes[mi]) {
        const int32_t orig_out = tables->original_fn[mi][c];
        const auto& cs = a.feasible_out_codes[mi];
        EXPECT_TRUE(std::find(cs.begin(), cs.end(), orig_out) != cs.end())
            << "seed " << seed << " module " << mi << " code " << c;
      }
      if (a.determined[mi]) {
        for (size_t k = 0; k < a.det_slot_codes[mi].size(); ++k) {
          const auto& list = a.det_slot_codes[mi][k];
          const int32_t orig_out = tables->original_fn[mi][static_cast<size_t>(
              tables->orig_input_codes[mi][k])];
          EXPECT_TRUE(std::find(list.begin(), list.end(), orig_out) !=
                      list.end())
              << "seed " << seed << " module " << mi;
        }
      }
    }
  }
}

}  // namespace
}  // namespace provview
