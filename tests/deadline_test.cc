// Deadline / cancellation / memory-budget semantics of the service-mode
// engines: a doomed control trips with a typed Status and partial stats, a
// generous one changes NOTHING — the results must be identical to a run
// with no control at all. That equivalence is the contract that lets podsd
// attach an ExecControl to every request unconditionally.
#include <gtest/gtest.h>

#include <vector>

#include "common/exec_control.h"
#include "privacy/workflow_privacy.h"
#include "server/client.h"
#include "server/daemon.h"
#include "server/registry.h"
#include "workflow/fig1_workflow.h"

namespace provview {
namespace {

// Every subset of {a3..a7} as a hidden-set request (gamma 2): enough work
// to be observable, small enough for a unit test.
std::vector<WorkflowCertificationRequest> Fig1Requests(
    const Fig1Workflow& fig1) {
  const int universe = fig1.catalog->size();
  const int attrs[] = {fig1.a3, fig1.a4, fig1.a5, fig1.a6, fig1.a7};
  std::vector<WorkflowCertificationRequest> requests;
  for (uint32_t mask = 0; mask < (1u << 5); ++mask) {
    Bitset64 hidden(universe);
    for (int b = 0; b < 5; ++b) {
      if ((mask >> b) & 1u) hidden.Set(attrs[b]);
    }
    requests.push_back(WorkflowCertificationRequest{hidden, 2});
  }
  return requests;
}

void ExpectSameEntries(const WorkflowBatchResult& a,
                       const WorkflowBatchResult& b) {
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].certificate.certified,
              b.entries[i].certificate.certified)
        << "request " << i;
    EXPECT_EQ(a.entries[i].certificate.module_gammas,
              b.entries[i].certificate.module_gammas)
        << "request " << i;
    EXPECT_EQ(a.entries[i].certificate.required_privatizations,
              b.entries[i].certificate.required_privatizations)
        << "request " << i;
    EXPECT_EQ(a.entries[i].ground_truth_private,
              b.entries[i].ground_truth_private)
        << "request " << i;
  }
}

TEST(DeadlineTest, DoomedDeadlineTripsWithPartialStats) {
  Fig1Workflow fig1 = MakeFig1Workflow();
  const auto requests = Fig1Requests(fig1);

  ExecControl control;
  control.set_deadline_ms(0);  // already expired at entry
  WorkflowBatchOptions opts;
  opts.num_threads = 1;
  opts.control = &control;
  const WorkflowBatchResult result =
      CertifyWorkflowBatch(*fig1.workflow, requests, opts);

  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  // Entries exist (aligned with requests) but carry no certified verdicts.
  ASSERT_EQ(result.entries.size(), requests.size());
  for (const WorkflowBatchEntry& e : result.entries) {
    EXPECT_FALSE(e.certificate.certified);
  }
}

TEST(DeadlineTest, CancellationTripsAsDeadlineExceeded) {
  Fig1Workflow fig1 = MakeFig1Workflow();
  ExecControl control;
  control.Cancel();  // e.g. the connection dropped before the engine ran
  WorkflowBatchOptions opts;
  opts.control = &control;
  const WorkflowBatchResult result =
      CertifyWorkflowBatch(*fig1.workflow, Fig1Requests(fig1), opts);
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineTest, GenerousDeadlineIsByteIdenticalToNoControl) {
  Fig1Workflow fig1 = MakeFig1Workflow();
  const auto requests = Fig1Requests(fig1);

  WorkflowBatchOptions plain;
  plain.num_threads = 1;
  const WorkflowBatchResult baseline =
      CertifyWorkflowBatch(*fig1.workflow, requests, plain);
  ASSERT_TRUE(baseline.status.ok());

  ExecControl control;
  control.set_deadline_ms(60'000);
  control.set_memory_budget(int64_t{1} << 30);
  WorkflowBatchOptions guarded = plain;
  guarded.control = &control;
  const WorkflowBatchResult with_control =
      CertifyWorkflowBatch(*fig1.workflow, requests, guarded);
  ASSERT_TRUE(with_control.status.ok());

  ExpectSameEntries(baseline, with_control);
  EXPECT_EQ(baseline.stats.checker_calls, with_control.stats.checker_calls);
  EXPECT_EQ(baseline.stats.cache_hits, with_control.stats.cache_hits);
}

TEST(DeadlineTest, GenerousControlMatchesGroundTruthPath) {
  Fig1Workflow fig1 = MakeFig1Workflow();
  auto requests = Fig1Requests(fig1);
  requests.resize(8);  // ground truth enumerates worlds: keep it tiny

  WorkflowBatchOptions plain;
  plain.num_threads = 1;
  plain.with_ground_truth = true;
  const WorkflowBatchResult baseline =
      CertifyWorkflowBatch(*fig1.workflow, requests, plain);
  ASSERT_TRUE(baseline.status.ok());

  ExecControl control;
  control.set_deadline_ms(120'000);
  control.set_memory_budget(int64_t{1} << 30);
  WorkflowBatchOptions guarded = plain;
  guarded.control = &control;
  const WorkflowBatchResult with_control =
      CertifyWorkflowBatch(*fig1.workflow, requests, guarded);
  ASSERT_TRUE(with_control.status.ok());

  ExpectSameEntries(baseline, with_control);
}

TEST(DeadlineTest, TinyMemoryBudgetTripsResourceExhausted) {
  Fig1Workflow fig1 = MakeFig1Workflow();
  auto requests = Fig1Requests(fig1);
  requests.resize(4);

  ExecControl control;
  control.set_memory_budget(16);  // the world tables cannot fit in 16 bytes
  WorkflowBatchOptions opts;
  opts.num_threads = 1;
  opts.with_ground_truth = true;  // the enumeration engines charge memory
  opts.control = &control;
  const WorkflowBatchResult result =
      CertifyWorkflowBatch(*fig1.workflow, requests, opts);
  EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
  // A rejected charge is never recorded: whatever DID fit stayed under the
  // ceiling the whole time.
  EXPECT_LE(control.peak_bytes(), 16);
}

// -- daemon round trips ------------------------------------------------------

TEST(DeadlineTest, DaemonDoomedDeadlineIsTypedAndSurvives) {
  WorkflowRegistry registry;
  registry.RegisterBuiltins();
  PodsDaemon daemon(&registry);
  ASSERT_TRUE(daemon.Start().ok());

  PodsClient client;
  ASSERT_TRUE(client.Connect(daemon.port()).ok());

  CertifyRequest doomed;
  doomed.workflow = "fig1";
  doomed.deadline_ms = 1;  // armed, and expired by the time the engine polls
  doomed.items.push_back(CertifyItem{2, {3, 4}});
  // The engine may win the race on a fast machine; force the loss by
  // sending a request whose deadline has passed before the daemon parses
  // it: 1ms is enough in practice, but accept either typed outcome.
  CertifyResponse resp;
  const Status s = client.Certify(doomed, /*batch=*/false, &resp);
  EXPECT_TRUE(s.ok() || s.code() == StatusCode::kDeadlineExceeded)
      << s.message();

  // Whatever happened, the connection and the daemon survived.
  EXPECT_TRUE(client.Ping().ok());
  StatSnapshot stats;
  EXPECT_TRUE(client.Stat(&stats).ok());
  daemon.Stop();
}

TEST(DeadlineTest, DaemonGenerousDeadlineMatchesDirectBatch) {
  WorkflowRegistry registry;
  registry.RegisterBuiltins();
  PodsDaemon daemon(&registry);
  ASSERT_TRUE(daemon.Start().ok());

  Fig1Workflow fig1 = MakeFig1Workflow();
  const auto direct_requests = Fig1Requests(fig1);
  WorkflowBatchOptions opts;
  opts.num_threads = 1;
  const WorkflowBatchResult direct =
      CertifyWorkflowBatch(*fig1.workflow, direct_requests, opts);
  ASSERT_TRUE(direct.status.ok());

  PodsClient client;
  ASSERT_TRUE(client.Connect(daemon.port()).ok());
  CertifyRequest req;
  req.workflow = "fig1";
  req.deadline_ms = 60'000;
  const int attrs[] = {fig1.a3, fig1.a4, fig1.a5, fig1.a6, fig1.a7};
  for (uint32_t mask = 0; mask < (1u << 5); ++mask) {
    CertifyItem item;
    item.gamma = 2;
    for (int b = 0; b < 5; ++b) {
      if ((mask >> b) & 1u) {
        item.hidden_attrs.push_back(static_cast<uint32_t>(attrs[b]));
      }
    }
    req.items.push_back(std::move(item));
  }
  CertifyResponse resp;
  ASSERT_TRUE(client.Certify(req, /*batch=*/true, &resp).ok());

  ASSERT_EQ(resp.entries.size(), direct.entries.size());
  for (size_t i = 0; i < resp.entries.size(); ++i) {
    EXPECT_EQ(resp.entries[i].certified, direct.entries[i].certificate.certified)
        << "request " << i;
    EXPECT_EQ(resp.entries[i].module_gammas,
              direct.entries[i].certificate.module_gammas)
        << "request " << i;
  }
  daemon.Stop();
}

}  // namespace
}  // namespace provview
