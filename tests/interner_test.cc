#include "common/interner.h"

#include <gtest/gtest.h>

#include "relation/relation.h"

namespace provview {
namespace {

TEST(TupleInternerTest, AssignsDenseIdsInFirstSeenOrder) {
  TupleInterner interner;
  EXPECT_TRUE(interner.empty());
  EXPECT_EQ(interner.Intern({1, 2}), 0);
  EXPECT_EQ(interner.Intern({3}), 1);
  EXPECT_EQ(interner.Intern({1, 2}), 0);  // already present
  EXPECT_EQ(interner.Intern({}), 2);
  EXPECT_EQ(interner.size(), 3);
}

TEST(TupleInternerTest, FindNeverInserts) {
  TupleInterner interner;
  interner.Intern({7, 7});
  EXPECT_EQ(interner.Find({7, 7}), 0);
  EXPECT_EQ(interner.Find({7, 8}), -1);
  EXPECT_EQ(interner.size(), 1);
}

TEST(TupleInternerTest, TupleOfRoundTrips) {
  TupleInterner interner;
  std::vector<int32_t> t = {4, 0, 9};
  int32_t id = interner.Intern(t);
  EXPECT_EQ(interner.TupleOf(id), t);
}

TEST(TupleInternerTest, RelationHookInternsProjections) {
  auto catalog = std::make_shared<AttributeCatalog>();
  AttrId a = catalog->Add("a", 3);
  AttrId b = catalog->Add("b", 3);
  Relation rel(Schema(catalog, {a, b}));
  rel.AddRow({0, 1});
  rel.AddRow({0, 2});
  rel.AddRow({1, 1});
  rel.AddRow({0, 1});  // duplicate row

  TupleInterner rows;
  std::vector<int32_t> row_ids = rel.InternRows(&rows);
  EXPECT_EQ(row_ids, (std::vector<int32_t>{0, 1, 2, 0}));
  EXPECT_EQ(rows.size(), 3);

  TupleInterner proj;
  std::vector<int32_t> proj_ids = rel.InternProjectedRows({a}, &proj);
  // π_a collapses rows 0, 1, 3 onto the same projected tuple (0).
  EXPECT_EQ(proj_ids, (std::vector<int32_t>{0, 0, 1, 0}));
  EXPECT_EQ(proj.size(), 2);
  EXPECT_EQ(proj.TupleOf(0), (Tuple{0}));
  EXPECT_EQ(proj.TupleOf(1), (Tuple{1}));
}

}  // namespace
}  // namespace provview
