#include <gtest/gtest.h>

#include "workflow/dot_export.h"
#include "workflow/fig1_workflow.h"

namespace provview {
namespace {

TEST(DotExportTest, ContainsModulesAndAttributes) {
  Fig1Workflow fig = MakeFig1Workflow();
  std::string dot = ToDot(*fig.workflow);
  EXPECT_NE(dot.find("digraph workflow"), std::string::npos);
  for (const char* name : {"m1", "m2", "m3"}) {
    EXPECT_NE(dot.find(name), std::string::npos) << name;
  }
  for (const char* attr : {"a1", "a4", "a7"}) {
    EXPECT_NE(dot.find(attr), std::string::npos) << attr;
  }
  EXPECT_EQ(dot.back(), '\n');
}

TEST(DotExportTest, SharedAttributeEmitsTwoEdges) {
  Fig1Workflow fig = MakeFig1Workflow();
  std::string dot = ToDot(*fig.workflow);
  // a4 feeds both m2 and m3: its label appears twice.
  size_t first = dot.find("a4 (");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(dot.find("a4 (", first + 1), std::string::npos);
}

TEST(DotExportTest, HiddenAttributesDashed) {
  Fig1Workflow fig = MakeFig1Workflow();
  DotOptions options;
  options.hidden = Bitset64::Of(7, {fig.a4});
  std::string dot = ToDot(*fig.workflow, options);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(DotExportTest, PublicAndPrivatizedStyling) {
  Fig1Workflow fig = MakeFig1Workflow();
  fig.workflow->mutable_module(fig.m2_index)->set_public(true);
  DotOptions options;
  options.privatized = {fig.m2_index};
  options.graph_name = "fig1";
  std::string dot = ToDot(*fig.workflow, options);
  EXPECT_NE(dot.find("digraph fig1"), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightgrey"), std::string::npos);
}

TEST(DotExportTest, NoHiddenByDefault) {
  Fig1Workflow fig = MakeFig1Workflow();
  std::string dot = ToDot(*fig.workflow);
  EXPECT_EQ(dot.find("style=dashed"), std::string::npos);
}

}  // namespace
}  // namespace provview
