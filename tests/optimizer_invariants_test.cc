// Cross-solver invariants for the wave branch-and-bound optimizer stack
// (docs/optimizer.md): the exact solver dominates every approximation, its
// bounds are real, brute force agrees on small instances, the Theorem 5/6/7
// ratio guarantees hold, the parallel wave engine is byte-identical at any
// thread count, and tripped solves (node budget, deadline) still carry a
// feasible incumbent with a finite proven gap.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/exec_control.h"
#include "common/rng.h"
#include "generators/random_workflow.h"
#include "generators/requirement_gen.h"
#include "lp/branch_and_bound.h"
#include "secureview/bnb_oracle.h"
#include "secureview/feasibility.h"
#include "secureview/ilp_encoding.h"
#include "secureview/solvers.h"
#include "secureview/workflow_exact.h"

namespace provview {
namespace {

SecureViewInstance RandomInstance(int seed, ConstraintKind kind,
                                  int num_modules = 6,
                                  double public_fraction = 0.0) {
  Rng rng(static_cast<uint64_t>(seed) * 31 + 7);
  RandomInstanceOptions opt;
  opt.kind = kind;
  opt.num_modules = num_modules;
  opt.max_inputs = 3;
  opt.max_outputs = 2;
  opt.max_list_length = 3;
  opt.max_option_size = 2;
  opt.reuse_probability = 0.7;
  opt.public_fraction = public_fraction;
  return MakeRandomInstance(opt, &rng);
}

// ---------------------------------------------------------------------
// The full pruning stack (warm start + oracle + scratch LP + best-bound)
// still computes the exact optimum: it matches brute force, lower-bounds
// every approximation, and the paper's ratio guarantees hold against it.
// ---------------------------------------------------------------------
struct SweepCase {
  int seed;
  ConstraintKind kind;
};

class OptimizerSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(OptimizerSweepTest, ExactDominatesAndRatioBoundsHold) {
  const SweepCase& sc = GetParam();
  SecureViewInstance inst = RandomInstance(sc.seed, sc.kind);

  SvResult exact = SolveExact(inst);  // default ExactOptions: full stack
  ASSERT_TRUE(exact.status.ok());
  EXPECT_TRUE(IsFeasible(inst, exact.solution));
  EXPECT_NEAR(exact.gap, 0.0, 1e-12);
  EXPECT_NEAR(exact.lower_bound, exact.cost, 1e-9);

  SvResult brute = SolveBruteForce(inst);
  ASSERT_TRUE(brute.status.ok());
  EXPECT_NEAR(exact.cost, brute.cost, 1e-6);

  SvResult greedy = SolveGreedyPerModule(inst);
  SvResult coverage = SolveGreedyCoverage(inst);
  RoundingOptions ro;
  ro.seed = static_cast<uint64_t>(sc.seed) + 1;
  SvResult rounding = SolveByLpRounding(inst, ro);
  ASSERT_TRUE(rounding.status.ok());

  // Exact ≤ every approximation; every approximation is feasible.
  for (const SvResult* r : {&greedy, &coverage, &rounding}) {
    ASSERT_TRUE(r->status.ok());
    EXPECT_TRUE(IsFeasible(inst, r->solution));
    EXPECT_GE(r->cost, exact.cost - 1e-6);
    EXPECT_LE(r->lower_bound, r->cost + 1e-6);
  }
  // The LP relaxation lower-bounds OPT.
  EXPECT_LE(rounding.lower_bound, exact.cost + 1e-6);

  // Theorem 7: greedy-per-module within (γ+1)·OPT.
  EXPECT_LE(greedy.cost,
            (inst.DataSharingDegree() + 1.0) * exact.cost + 1e-6);
  // Theorem 5 flavor: randomized rounding stays within an O(log n) factor
  // (generous constant — the repair step caps each trial).
  const double logn =
      std::max(1.0, 3.0 * std::log(static_cast<double>(inst.num_attrs) + 2.0));
  EXPECT_LE(rounding.cost, logn * std::max(exact.cost, 1e-9) + 1e-6);
  if (sc.kind == ConstraintKind::kSet) {
    // Theorem 6: deterministic threshold rounding within ℓ_max·OPT.
    SvResult thresh = SolveByThresholdRounding(inst);
    ASSERT_TRUE(thresh.status.ok());
    EXPECT_TRUE(IsFeasible(inst, thresh.solution));
    EXPECT_LE(thresh.cost,
              static_cast<double>(inst.MaxListLength()) * exact.cost + 1e-6);
  }
}

std::vector<SweepCase> MakeSweepCases() {
  std::vector<SweepCase> cases;
  for (int seed = 0; seed < 6; ++seed) {
    cases.push_back({seed, ConstraintKind::kCardinality});
    cases.push_back({seed, ConstraintKind::kSet});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, OptimizerSweepTest,
                         ::testing::ValuesIn(MakeSweepCases()));

// With public modules, the stack must account privatization costs the same
// way brute force does.
class PublicStackTest : public ::testing::TestWithParam<int> {};

TEST_P(PublicStackTest, MatchesBruteForceWithPrivatization) {
  SecureViewInstance inst =
      RandomInstance(GetParam(), ConstraintKind::kCardinality, 5,
                     /*public_fraction=*/0.4);
  if (inst.PrivateModules().empty()) GTEST_SKIP();
  SvResult exact = SolveExact(inst);
  ASSERT_TRUE(exact.status.ok());
  SvResult brute = SolveBruteForce(inst);
  ASSERT_TRUE(brute.status.ok());
  EXPECT_NEAR(exact.cost, brute.cost, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PublicStackTest, ::testing::Range(0, 6));

// ---------------------------------------------------------------------
// Determinism: the wave engine's BnbResult is byte-identical at any
// thread count, in both traversal orders, with the oracle installed.
// ---------------------------------------------------------------------
void ExpectIdentical(const BnbResult& a, const BnbResult& b) {
  EXPECT_EQ(a.status.code(), b.status.code());
  ASSERT_EQ(a.x.size(), b.x.size());
  for (size_t i = 0; i < a.x.size(); ++i) EXPECT_EQ(a.x[i], b.x[i]);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.lower_bound, b.lower_bound);
  EXPECT_EQ(a.gap, b.gap);
  EXPECT_EQ(a.nodes_explored, b.nodes_explored);
  EXPECT_EQ(a.lp_solves, b.lp_solves);
  EXPECT_EQ(a.oracle_fathoms, b.oracle_fathoms);
}

TEST(ParallelEquivalenceTest, ByteIdenticalAcrossThreadCounts) {
  for (int seed = 0; seed < 3; ++seed) {
    SecureViewInstance inst =
        RandomInstance(seed + 100, ConstraintKind::kSet, 8);
    SvEncoding enc = EncodeSecureView(inst);
    for (bool best_bound : {true, false}) {
      BnbOptions base;
      base.best_bound = best_bound;
      base.wave_width = 4;  // several waves, several nodes per wave
      base.oracle = MakeSecureViewBnbOracle(&inst, &enc);
      BnbResult one, two, eight;
      {
        BnbOptions o = base;
        o.num_threads = 1;
        one = SolveIlp(enc.lp, enc.integer_vars, o);
      }
      {
        BnbOptions o = base;
        o.num_threads = 2;
        two = SolveIlp(enc.lp, enc.integer_vars, o);
      }
      {
        BnbOptions o = base;
        o.num_threads = 8;
        eight = SolveIlp(enc.lp, enc.integer_vars, o);
      }
      ASSERT_TRUE(one.status.ok());
      ExpectIdentical(one, two);
      ExpectIdentical(one, eight);
    }
  }
}

TEST(ScratchLpTest, MatchesLegacyRebuildPath) {
  for (int seed = 0; seed < 4; ++seed) {
    SecureViewInstance inst =
        RandomInstance(seed + 200, ConstraintKind::kCardinality, 7);
    SvEncoding enc = EncodeSecureView(inst);
    BnbOptions scratch;
    scratch.use_scratch_lp = true;
    BnbOptions rebuild;
    rebuild.use_scratch_lp = false;
    BnbResult a = SolveIlp(enc.lp, enc.integer_vars, scratch);
    BnbResult b = SolveIlp(enc.lp, enc.integer_vars, rebuild);
    ASSERT_TRUE(a.status.ok());
    // Same traversal, same relaxations — only the LP storage differs.
    ExpectIdentical(a, b);
  }
}

// ---------------------------------------------------------------------
// Tripped solves: node budget and deadline both surface a typed status
// WITH a feasible incumbent and a finite proven gap.
// ---------------------------------------------------------------------
TEST(NodeBudgetTest, TimeoutCarriesIncumbentAndGap) {
  SecureViewInstance inst = RandomInstance(7, ConstraintKind::kSet, 10);
  ExactOptions opt;
  opt.bnb.max_nodes = 1;
  opt.oracle = false;  // force real branching so the budget actually trips
  SvResult r = SolveExact(inst, opt);
  if (r.status.ok()) GTEST_SKIP() << "instance solved within one node";
  EXPECT_EQ(r.status.code(), StatusCode::kTimeout);
  EXPECT_TRUE(IsFeasible(inst, r.solution));  // the warm-start incumbent
  EXPECT_TRUE(std::isfinite(r.gap));
  EXPECT_GE(r.gap, 0.0);
  EXPECT_GE(r.lower_bound, 0.0);
  EXPECT_NEAR(r.cost - r.lower_bound, r.gap, 1e-9);
}

TEST(DeadlineTest, DoomedDeadlineStillReturnsFeasibleIncumbent) {
  SecureViewInstance inst = RandomInstance(11, ConstraintKind::kSet, 10);
  ExecControl control;
  control.set_deadline_ms(0);  // trips on the first poll
  ExactOptions opt;
  opt.bnb.control = &control;
  SvResult r = SolveExact(inst, opt);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(IsFeasible(inst, r.solution));
  EXPECT_TRUE(std::isfinite(r.gap));
  EXPECT_GE(r.gap, 0.0);
  EXPECT_NEAR(r.cost - r.lower_bound, r.gap, 1e-9);
}

// ---------------------------------------------------------------------
// Workflow-level stack: shared-memo derivation + useless-attr fixing +
// certification, in both oracle modes, equals brute force on the derived
// instance.
// ---------------------------------------------------------------------
class WorkflowStackTest : public ::testing::TestWithParam<int> {};

TEST_P(WorkflowStackTest, FullStackMatchesBruteForceAndCertifies) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 13 + 3);
  RandomWorkflowOptions wopt;
  wopt.num_modules = 6;
  wopt.num_layers = 2;
  GeneratedWorkflow gen = MakeRandomWorkflow(wopt, &rng);

  WorkflowExactOptions opt;
  WorkflowExactResult full = SolveExactForWorkflow(*gen.workflow, opt);
  ASSERT_TRUE(full.result.status.ok());
  EXPECT_TRUE(full.semantics_verified);

  SvResult brute = SolveBruteForce(full.instance);
  ASSERT_TRUE(brute.status.ok());
  EXPECT_NEAR(full.result.cost, brute.cost, 1e-6);

  // Pinned-visible attributes must never be hidden by the winner.
  for (int a : full.fixed_attrs) {
    EXPECT_FALSE(full.result.solution.hidden.Test(a));
  }

  // The memo-backed oracle answers through the shared verdict cache and
  // must land on the same optimum.
  WorkflowExactOptions memo_opt;
  memo_opt.exact.oracle = false;
  memo_opt.memo_oracle = true;
  WorkflowExactResult memo = SolveExactForWorkflow(*gen.workflow, memo_opt);
  ASSERT_TRUE(memo.result.status.ok());
  EXPECT_NEAR(memo.result.cost, full.result.cost, 1e-6);
  EXPECT_TRUE(memo.semantics_verified);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkflowStackTest, ::testing::Range(0, 4));

TEST(LayeredGeneratorTest, HundredModuleWorkflowGeneratesAndValidates) {
  Rng rng(99);
  RandomWorkflowOptions opt;
  opt.num_modules = 120;
  opt.num_layers = 8;
  opt.cross_layer_probability = 0.15;
  GeneratedWorkflow gen = MakeRandomWorkflow(opt, &rng);  // Validate()s inside
  EXPECT_EQ(gen.workflow->num_modules(), 120);
  EXPECT_GT(gen.workflow->num_attrs(), 120);
}

}  // namespace
}  // namespace provview
