#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/combinatorics.h"
#include "common/rng.h"
#include "module/module_library.h"
#include "privacy/safe_subset_search.h"
#include "privacy/standalone_privacy.h"
#include "workflow/fig1_workflow.h"

namespace provview {
namespace {

TEST(SafeSubsetSearchTest, Fig1M1MinimalSetsForGamma4) {
  Fig1Workflow fig = MakeFig1Workflow();
  const Module& m1 = fig.workflow->module(fig.m1_index);
  std::vector<Bitset64> minimal = MinimalSafeHiddenSets(m1, 4);
  // Every pair of outputs is safe (Example 3); check they are among the
  // minimal sets and that no single attribute suffices.
  auto contains = [&](std::initializer_list<int> ids) {
    Bitset64 b = Bitset64::Of(7, ids);
    return std::find(minimal.begin(), minimal.end(), b) != minimal.end();
  };
  EXPECT_TRUE(contains({fig.a3, fig.a4}));
  EXPECT_TRUE(contains({fig.a3, fig.a5}));
  EXPECT_TRUE(contains({fig.a4, fig.a5}));
  for (const Bitset64& b : minimal) {
    EXPECT_GE(b.count(), 2) << b.ToString();
  }
  // Antichain: no minimal set contains another.
  for (const Bitset64& a : minimal) {
    for (const Bitset64& b : minimal) {
      if (a == b) continue;
      EXPECT_FALSE(a.IsSubsetOf(b))
          << a.ToString() << " subset of " << b.ToString();
    }
  }
}

TEST(SafeSubsetSearchTest, MinimalSetsAreExactlyTheSafeFrontier) {
  // Cross-check against direct enumeration: a hidden set is safe iff it
  // contains some minimal safe set.
  Fig1Workflow fig = MakeFig1Workflow();
  const Module& m1 = fig.workflow->module(fig.m1_index);
  Relation rel = m1.FullRelation();
  std::vector<Bitset64> minimal = MinimalSafeHiddenSets(m1, 4);
  ForEachSubsetOf(m1.AttrSet(), [&](const Bitset64& hidden) {
    bool safe = IsStandaloneSafe(rel, m1.inputs(), m1.outputs(),
                                 hidden.Complement(), 4);
    bool dominated = std::any_of(
        minimal.begin(), minimal.end(),
        [&](const Bitset64& m) { return m.IsSubsetOf(hidden); });
    EXPECT_EQ(safe, dominated) << hidden.ToString();
  });
}

TEST(SafeSubsetSearchTest, MinCostPicksCheapestMinimalSet) {
  Fig1Workflow fig = MakeFig1Workflow();
  // Make inputs expensive so the output-pair options win, and a3 very
  // expensive so {a4, a5} is the unique optimum.
  fig.catalog->SetCost(fig.a1, 5.0);
  fig.catalog->SetCost(fig.a2, 5.0);
  fig.catalog->SetCost(fig.a3, 10.0);
  fig.catalog->SetCost(fig.a4, 1.0);
  fig.catalog->SetCost(fig.a5, 2.0);
  const Module& m1 = fig.workflow->module(fig.m1_index);
  MinCostSafeResult r = MinCostSafeHiddenSet(m1, 4);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.hidden, Bitset64::Of(7, {fig.a4, fig.a5}));
  EXPECT_DOUBLE_EQ(r.cost, 3.0);
  EXPECT_GT(r.stats.checker_calls, 0);
  EXPECT_GT(r.stats.subsets_examined, r.stats.checker_calls);
}

TEST(SafeSubsetSearchTest, ImpossibleGammaFindsNothing) {
  Fig1Workflow fig = MakeFig1Workflow();
  const Module& m1 = fig.workflow->module(fig.m1_index);
  // Γ = 9 > |Range| = 8: not even hiding everything works.
  EXPECT_TRUE(MinimalSafeHiddenSets(m1, 9).empty());
  EXPECT_FALSE(MinCostSafeHiddenSet(m1, 9).found);
}

TEST(SafeSubsetSearchTest, Gamma1NeedsNothingHidden) {
  Fig1Workflow fig = MakeFig1Workflow();
  const Module& m1 = fig.workflow->module(fig.m1_index);
  std::vector<Bitset64> minimal = MinimalSafeHiddenSets(m1, 1);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_TRUE(minimal[0].empty());
  MinCostSafeResult r = MinCostSafeHiddenSet(m1, 1);
  ASSERT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
}

TEST(SafeSubsetSearchTest, CardinalityPairsForBijection) {
  // Example 6: a one-one k-bit module has frontier {(k,0), (0,k)} for
  // Γ = 2^k.
  auto catalog = std::make_shared<AttributeCatalog>();
  for (int i = 0; i < 6; ++i) catalog->Add("a" + std::to_string(i));
  Rng rng(17);
  ModulePtr bij =
      MakeRandomBijection("bij", catalog, {0, 1, 2}, {3, 4, 5}, &rng);
  std::vector<CardinalityPair> frontier = MinimalSafeCardinalityPairs(*bij, 8);
  // Example 6 guarantees (k, 0) and (0, k) are safe; for particular random
  // bijections additional mixed pairs may also be safe. The pure pairs
  // must be on the frontier because (k-1, 0) and (0, k-1) are never safe
  // for a one-one module.
  bool has_k0 = false, has_0k = false;
  for (const CardinalityPair& p : frontier) {
    if (p == CardinalityPair{3, 0}) has_k0 = true;
    if (p == CardinalityPair{0, 3}) has_0k = true;
    // Frontier entries are pairwise incomparable.
    for (const CardinalityPair& q : frontier) {
      if (p == q) continue;
      EXPECT_FALSE(p.alpha <= q.alpha && p.beta <= q.beta)
          << "(" << p.alpha << "," << p.beta << ") dominates (" << q.alpha
          << "," << q.beta << ")";
    }
  }
  EXPECT_TRUE(has_k0);
  EXPECT_TRUE(has_0k);
}

TEST(SafeSubsetSearchTest, CardinalityPairsForMajority) {
  // Example 6: majority with 2k inputs: {(k+1, 0), (0, 1)} for Γ = 2.
  auto catalog = std::make_shared<AttributeCatalog>();
  for (int i = 0; i < 5; ++i) catalog->Add("a" + std::to_string(i));
  ModulePtr maj = MakeMajority("maj", catalog, {0, 1, 2, 3}, 4);
  std::vector<CardinalityPair> frontier = MinimalSafeCardinalityPairs(*maj, 2);
  ASSERT_EQ(frontier.size(), 2u);
  bool has_inputs_option = false, has_output_option = false;
  for (const CardinalityPair& p : frontier) {
    if (p.alpha == 3 && p.beta == 0) has_inputs_option = true;
    if (p.alpha == 0 && p.beta == 1) has_output_option = true;
  }
  EXPECT_TRUE(has_inputs_option);
  EXPECT_TRUE(has_output_option);
}

TEST(SafeSubsetSearchTest, CardinalityFrontierSoundness) {
  // Every frontier pair must make EVERY subset of that shape safe.
  Fig1Workflow fig = MakeFig1Workflow();
  const Module& m1 = fig.workflow->module(fig.m1_index);
  Relation rel = m1.FullRelation();
  for (const CardinalityPair& p : MinimalSafeCardinalityPairs(m1, 4)) {
    for (const Bitset64& in_combo : SubsetsOfSize(2, p.alpha)) {
      for (const Bitset64& out_combo : SubsetsOfSize(3, p.beta)) {
        Bitset64 hidden(7);
        for (int local : in_combo.ToVector()) {
          hidden.Set(m1.inputs()[static_cast<size_t>(local)]);
        }
        for (int local : out_combo.ToVector()) {
          hidden.Set(m1.outputs()[static_cast<size_t>(local)]);
        }
        EXPECT_TRUE(IsStandaloneSafe(rel, m1.inputs(), m1.outputs(),
                                     hidden.Complement(), 4))
            << "alpha=" << p.alpha << " beta=" << p.beta << " hidden "
            << hidden.ToString();
      }
    }
  }
}

// ---------------------------------------------------------------------
// Sharded lattice walk: identical results and exactly aggregated stats.
// ---------------------------------------------------------------------

TEST(SafeSubsetSearchTest, ShardedMinimalSetsMatchSequential) {
  // k = 14 random module; force sharding even on the small levels.
  auto catalog = std::make_shared<AttributeCatalog>();
  std::vector<AttrId> in, out;
  for (int i = 0; i < 7; ++i) in.push_back(catalog->Add("i" + std::to_string(i)));
  for (int o = 0; o < 7; ++o) out.push_back(catalog->Add("o" + std::to_string(o)));
  Rng rng(29);
  ModulePtr m = MakeRandomFunction("wide", catalog, in, out, &rng);
  for (int64_t gamma : {int64_t{2}, int64_t{8}}) {
    SubsetSearchOptions seq, par;
    seq.num_threads = 1;
    par.num_threads = 4;
    par.min_parallel_subsets = 0;
    SafeSearchStats seq_stats, par_stats;
    std::vector<Bitset64> a = MinimalSafeHiddenSets(
        *m, gamma, &seq_stats, Module::kDefaultMaterializeRows, seq);
    std::vector<Bitset64> b = MinimalSafeHiddenSets(
        *m, gamma, &par_stats, Module::kDefaultMaterializeRows, par);
    EXPECT_EQ(a, b) << "gamma " << gamma;  // same sets, same order
    // Exact aggregation: every examined subset is counted exactly once
    // across the shards — the total is the closed-form lattice size, the
    // same value the sequential walk reports.
    int64_t lattice = 0;
    for (int s = 0; s <= 14; ++s) lattice += BinomialCoefficient(14, s);
    EXPECT_EQ(seq_stats.subsets_examined, lattice);
    EXPECT_EQ(par_stats.subsets_examined, lattice);
    // Every non-dominated candidate got a verdict from the checker or a
    // memo level, in both modes.
    EXPECT_EQ(seq_stats.checker_calls + seq_stats.cache_hits,
              par_stats.checker_calls + par_stats.cache_hits);
    EXPECT_EQ(par_stats.signature_hits + par_stats.projection_hits,
              par_stats.cache_hits);
  }
}

TEST(SafeSubsetSearchTest, ShardedMinCostAndCardinalityMatchSequential) {
  Rng rng(31);
  auto catalog = std::make_shared<AttributeCatalog>();
  for (int i = 0; i < 10; ++i) {
    catalog->Add("a" + std::to_string(i), 2, 1.0 + rng.NextDouble() * 3.0);
  }
  ModulePtr m = MakeRandomFunction("f", catalog, {0, 1, 2, 3, 4},
                                   {5, 6, 7, 8, 9}, &rng);
  SubsetSearchOptions seq, par;
  seq.num_threads = 1;
  par.num_threads = 4;
  par.min_parallel_subsets = 0;
  for (int64_t gamma : {int64_t{2}, int64_t{4}}) {
    MinCostSafeResult a =
        MinCostSafeHiddenSet(*m, gamma, Module::kDefaultMaterializeRows, seq);
    MinCostSafeResult b =
        MinCostSafeHiddenSet(*m, gamma, Module::kDefaultMaterializeRows, par);
    EXPECT_EQ(a.found, b.found) << "gamma " << gamma;
    if (a.found) {
      EXPECT_EQ(a.hidden, b.hidden);
      EXPECT_DOUBLE_EQ(a.cost, b.cost);
    }
    std::vector<CardinalityPair> fa = MinimalSafeCardinalityPairs(
        *m, gamma, Module::kDefaultMaterializeRows, seq);
    std::vector<CardinalityPair> fb = MinimalSafeCardinalityPairs(
        *m, gamma, Module::kDefaultMaterializeRows, par);
    EXPECT_EQ(fa, fb) << "gamma " << gamma;
  }
}

TEST(SafeSubsetSearchTest, SharedMemoAccumulatesAcrossShardedSearches) {
  // A caller-owned memo reused across sharded searches keeps absorbing the
  // shard verdicts: the second search over the same module answers almost
  // everything from the cache.
  Rng rng(41);
  auto catalog = std::make_shared<AttributeCatalog>();
  for (int i = 0; i < 12; ++i) catalog->Add("a" + std::to_string(i));
  ModulePtr m = MakeRandomFunction("f", catalog, {0, 1, 2, 3, 4, 5},
                                   {6, 7, 8, 9, 10, 11}, &rng);
  SafetyMemo memo(*m);
  SubsetSearchOptions par;
  par.num_threads = 3;
  par.min_parallel_subsets = 0;
  SafeSearchStats first, second;
  std::vector<Bitset64> a =
      MinimalSafeHiddenSets(&memo, m->inputs(), m->outputs(),
                            catalog->size(), 4, &first, par);
  std::vector<Bitset64> b =
      MinimalSafeHiddenSets(&memo, m->inputs(), m->outputs(),
                            catalog->size(), 4, &second, par);
  EXPECT_EQ(a, b);
  EXPECT_EQ(second.checker_calls, 0);
  EXPECT_GT(second.cache_hits, 0);
}

TEST(SafeSubsetSearchTest, TaskGraphMatchesBarrierAndSequentialByteForByte) {
  // Randomized on/off equivalence of the task-graph walk: for every thread
  // count the task-graph mode must return the same sets in the same order
  // as both the barrier mode and the sequential walk — and its stats must
  // equal the SEQUENTIAL stats field for field (the lookup-log replay
  // guarantee; the barrier mode is only guaranteed the weaker invariants).
  for (uint64_t seed : {uint64_t{5}, uint64_t{97}, uint64_t{3021}}) {
    Rng rng(seed);
    auto catalog = std::make_shared<AttributeCatalog>();
    std::vector<AttrId> in, out;
    const int half = 6;
    for (int i = 0; i < half; ++i) {
      in.push_back(catalog->Add("i" + std::to_string(i)));
    }
    for (int o = 0; o < half; ++o) {
      out.push_back(catalog->Add("o" + std::to_string(o)));
    }
    ModulePtr m = MakeRandomFunction("wide", catalog, in, out, &rng);
    const int64_t gamma = 2 + static_cast<int64_t>(rng.NextBelow(6));

    SubsetSearchOptions seq;
    seq.num_threads = 1;
    SafeSearchStats seq_stats;
    std::vector<Bitset64> want = MinimalSafeHiddenSets(
        *m, gamma, &seq_stats, Module::kDefaultMaterializeRows, seq);

    for (int threads : {1, 2, 4}) {
      SubsetSearchOptions on, off;
      on.num_threads = threads;
      on.use_task_graph = true;
      on.min_parallel_subsets = 0;
      off.num_threads = threads;
      off.use_task_graph = false;
      off.min_parallel_subsets = 0;
      SafeSearchStats on_stats, off_stats;
      std::vector<Bitset64> got_on = MinimalSafeHiddenSets(
          *m, gamma, &on_stats, Module::kDefaultMaterializeRows, on);
      std::vector<Bitset64> got_off = MinimalSafeHiddenSets(
          *m, gamma, &off_stats, Module::kDefaultMaterializeRows, off);
      EXPECT_EQ(got_on, want) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(got_off, want) << "seed " << seed << " threads " << threads;
      // Replay-exact accounting: the task-graph stats ARE the sequential
      // stats at every thread count.
      EXPECT_EQ(on_stats.subsets_examined, seq_stats.subsets_examined);
      EXPECT_EQ(on_stats.checker_calls, seq_stats.checker_calls)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(on_stats.cache_hits, seq_stats.cache_hits);
      EXPECT_EQ(on_stats.signature_hits, seq_stats.signature_hits);
      EXPECT_EQ(on_stats.projection_hits, seq_stats.projection_hits);
      // The barrier mode keeps the weaker exact-aggregation invariants.
      EXPECT_EQ(off_stats.subsets_examined, seq_stats.subsets_examined);
      EXPECT_EQ(off_stats.checker_calls + off_stats.cache_hits,
                seq_stats.checker_calls + seq_stats.cache_hits);
    }
  }
}

TEST(SafeSubsetSearchTest, TaskGraphCardinalityPairsMatchModes) {
  Rng rng(53);
  auto catalog = std::make_shared<AttributeCatalog>();
  for (int i = 0; i < 10; ++i) catalog->Add("a" + std::to_string(i));
  ModulePtr m = MakeRandomFunction("f", catalog, {0, 1, 2, 3, 4},
                                   {5, 6, 7, 8, 9}, &rng);
  SubsetSearchOptions seq;
  seq.num_threads = 1;
  for (int64_t gamma : {int64_t{2}, int64_t{4}}) {
    std::vector<CardinalityPair> want = MinimalSafeCardinalityPairs(
        *m, gamma, Module::kDefaultMaterializeRows, seq);
    for (int threads : {2, 4}) {
      SubsetSearchOptions on, off;
      on.num_threads = threads;
      on.use_task_graph = true;
      on.min_parallel_subsets = 0;
      off.num_threads = threads;
      off.use_task_graph = false;
      off.min_parallel_subsets = 0;
      EXPECT_EQ(MinimalSafeCardinalityPairs(
                    *m, gamma, Module::kDefaultMaterializeRows, on),
                want)
          << "gamma " << gamma << " threads " << threads;
      EXPECT_EQ(MinimalSafeCardinalityPairs(
                    *m, gamma, Module::kDefaultMaterializeRows, off),
                want)
          << "gamma " << gamma << " threads " << threads;
    }
  }
}

// Property: on random modules, the min-cost search result is optimal among
// ALL safe subsets (checked by exhaustive enumeration) and itself safe.
class MinCostOptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(MinCostOptimalityTest, MatchesExhaustiveOptimum) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 101 + 7);
  auto catalog = std::make_shared<AttributeCatalog>();
  for (int i = 0; i < 5; ++i) {
    catalog->Add("a" + std::to_string(i), 2, 1.0 + rng.NextDouble() * 5.0);
  }
  ModulePtr mod = MakeRandomFunction("f", catalog, {0, 1}, {2, 3, 4}, &rng);
  Relation rel = mod->FullRelation();
  for (int64_t gamma : {2, 4}) {
    MinCostSafeResult r = MinCostSafeHiddenSet(rel, mod->inputs(),
                                               mod->outputs(), gamma);
    double best = std::numeric_limits<double>::infinity();
    ForEachSubset(5, [&](const Bitset64& hidden) {
      if (IsStandaloneSafe(rel, mod->inputs(), mod->outputs(),
                           hidden.Complement(), gamma)) {
        double cost = 0;
        for (int a : hidden.ToVector()) cost += catalog->Cost(a);
        best = std::min(best, cost);
      }
    });
    if (best == std::numeric_limits<double>::infinity()) {
      EXPECT_FALSE(r.found);
    } else {
      ASSERT_TRUE(r.found);
      EXPECT_NEAR(r.cost, best, 1e-9);
      EXPECT_TRUE(IsStandaloneSafe(rel, mod->inputs(), mod->outputs(),
                                   r.hidden.Complement(), gamma));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomModules, MinCostOptimalityTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace provview
