// Reactor front-end suite (the PR's acceptance bar): the epoll reactor must
// produce byte-identical responses to the legacy thread-per-connection
// front-end for the same request bytes, reassemble frames that arrive in
// arbitrary pieces, serve pipelined requests in order, hold 1000 idle
// connections with a thread count bounded by --reactor-threads (NOT by
// connection count), and surface request-level admission in STAT. Runs
// under ASan/UBSan and TSan in CI — a race between reactor shards, the
// completion queue, and detached engine tasks fails here.
#include <gtest/gtest.h>

#include <dirent.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "secureview/serialization.h"
#include "server/client.h"
#include "server/daemon.h"
#include "server/protocol.h"
#include "server/registry.h"
#include "workflow/fig1_workflow.h"

namespace provview {
namespace {

// Live thread count of THIS process — the bounded-threads acceptance check
// counts what the kernel sees, not what the daemon claims.
int CountProcessThreads() {
  DIR* dir = ::opendir("/proc/self/task");
  if (dir == nullptr) return -1;
  int count = 0;
  while (const dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++count;
  }
  ::closedir(dir);
  return count;
}

CertifyItem ItemForMask(uint32_t mask, const int* attrs, int num_attrs) {
  CertifyItem item;
  item.gamma = 2;
  for (int b = 0; b < num_attrs; ++b) {
    if ((mask >> b) & 1u) {
      item.hidden_attrs.push_back(static_cast<uint32_t>(attrs[b]));
    }
  }
  return item;
}

TEST(PodsdReactorTest, ReactorMatchesLegacyByteForByte) {
  // Same registry seeds, same request bytes, two front-ends: every response
  // frame must be IDENTICAL down to the byte. Both paths share HandleFrame,
  // so any divergence is a framing/dispatch bug in one of them.
  PodsDaemon::Options reactor_opts;
  reactor_opts.use_reactor = true;
  reactor_opts.reactor_threads = 2;
  reactor_opts.engine_threads = 2;
  PodsDaemon::Options legacy_opts;
  legacy_opts.use_reactor = false;
  legacy_opts.engine_threads = 2;

  WorkflowRegistry reactor_registry, legacy_registry;
  reactor_registry.RegisterBuiltins();
  legacy_registry.RegisterBuiltins();
  PodsDaemon reactor_daemon(&reactor_registry, reactor_opts);
  PodsDaemon legacy_daemon(&legacy_registry, legacy_opts);
  ASSERT_TRUE(reactor_daemon.Start().ok());
  ASSERT_TRUE(legacy_daemon.Start().ok());

  const Fig1Workflow fig1 = MakeFig1Workflow();
  const int attrs[] = {fig1.a3, fig1.a4, fig1.a5, fig1.a6, fig1.a7};
  std::string workflow_bytes;
  ASSERT_TRUE(SerializeWorkflowBinary(*fig1.workflow, &workflow_bytes).ok());

  // A corpus covering the whole dispatch table, valid and hostile alike
  // (request ids fixed so the echoed headers match too).
  std::vector<std::string> corpus;
  corpus.push_back(BuildRequestFrame(MessageType::kPing, 1));
  for (uint32_t mask = 0; mask < 32; ++mask) {
    CertifyRequest req;
    req.workflow = "fig1";
    req.items.push_back(ItemForMask(mask, attrs, 5));
    std::string body;
    EncodeCertifyRequest(req, /*batch=*/false, &body);
    corpus.push_back(
        BuildRequestFrame(MessageType::kCertify, 100 + mask, body));
  }
  {
    RegisterRequest reg;
    reg.name = "fig1-wire";
    reg.workflow_bytes = workflow_bytes;
    std::string body;
    EncodeRegisterRequest(reg, &body);
    corpus.push_back(BuildRequestFrame(MessageType::kRegister, 200, body));
    CertifyRequest req;
    req.workflow = "fig1-wire";
    req.items.push_back(ItemForMask(21, attrs, 5));
    std::string certify_body;
    EncodeCertifyRequest(req, /*batch=*/false, &certify_body);
    corpus.push_back(
        BuildRequestFrame(MessageType::kCertify, 201, certify_body));
    corpus.push_back(BuildRequestFrame(MessageType::kRegister, 202, body));
    std::string unreg_body;
    EncodeUnregisterRequest("fig1-wire", &unreg_body);
    corpus.push_back(
        BuildRequestFrame(MessageType::kUnregister, 203, unreg_body));
    corpus.push_back(
        BuildRequestFrame(MessageType::kUnregister, 204, unreg_body));
  }
  corpus.push_back(
      BuildRequestFrame(MessageType::kCertify, 300, "garbage body"));
  {
    FrameHeader unknown;
    unknown.type = 0x00EE;
    unknown.request_id = 301;
    std::string frame;
    EncodeFrameHeader(unknown, &frame);
    corpus.push_back(frame);
  }
  {
    CertifyRequest req;
    req.workflow = "no-such-workflow";
    req.items.push_back(CertifyItem{1, {}});
    std::string body;
    EncodeCertifyRequest(req, /*batch=*/false, &body);
    corpus.push_back(BuildRequestFrame(MessageType::kCertify, 302, body));
  }

  PodsClient reactor_client, legacy_client;
  ASSERT_TRUE(reactor_client.Connect(reactor_daemon.port()).ok());
  ASSERT_TRUE(legacy_client.Connect(legacy_daemon.port()).ok());
  for (size_t i = 0; i < corpus.size(); ++i) {
    ASSERT_TRUE(reactor_client.SendRaw(corpus[i]).ok());
    ASSERT_TRUE(legacy_client.SendRaw(corpus[i]).ok());
    FrameHeader rh, lh;
    std::string rbody, lbody;
    ASSERT_TRUE(reactor_client.RecvResponse(&rh, &rbody).ok());
    ASSERT_TRUE(legacy_client.RecvResponse(&lh, &lbody).ok());
    EXPECT_EQ(rh.type, lh.type) << "corpus entry " << i;
    EXPECT_EQ(rh.request_id, lh.request_id) << "corpus entry " << i;
    EXPECT_EQ(rbody, lbody) << "corpus entry " << i;
  }

  reactor_daemon.Stop();
  legacy_daemon.Stop();
}

TEST(PodsdReactorTest, ReassemblesFragmentedFramesAndServesPipelines) {
  WorkflowRegistry registry;
  registry.RegisterBuiltins();
  PodsDaemon::Options opts;
  opts.reactor_threads = 1;  // every fragment lands on the same shard
  PodsDaemon daemon(&registry, opts);
  ASSERT_TRUE(daemon.Start().ok());

  const Fig1Workflow fig1 = MakeFig1Workflow();
  const int attrs[] = {fig1.a3, fig1.a4, fig1.a5, fig1.a6, fig1.a7};
  CertifyRequest req;
  req.workflow = "fig1";
  req.items.push_back(ItemForMask(0b10110, attrs, 5));
  std::string body;
  EncodeCertifyRequest(req, /*batch=*/false, &body);
  const std::string frame =
      BuildRequestFrame(MessageType::kCertify, 7, body);

  // Dribble the frame in 1..5-byte pieces: the per-connection state machine
  // must reassemble it no matter where the kernel splits reads.
  PodsClient client;
  ASSERT_TRUE(client.Connect(daemon.port()).ok());
  Rng rng(0x66726167u);
  size_t sent = 0;
  while (sent < frame.size()) {
    const size_t piece =
        std::min(frame.size() - sent, 1 + rng.NextBelow(5));
    ASSERT_TRUE(
        client.SendRaw(std::string_view(frame).substr(sent, piece)).ok());
    sent += piece;
  }
  FrameHeader header;
  std::string resp_body;
  ASSERT_TRUE(client.RecvResponse(&header, &resp_body).ok());
  EXPECT_EQ(header.request_id, 7u);
  Status status;
  std::string_view payload;
  ASSERT_TRUE(ParseResponseBody(resp_body, &status, &payload).ok());
  EXPECT_TRUE(status.ok()) << status.message();

  // Pipelining: many frames in one write; responses come back in order
  // even though EPOLLIN is disarmed per in-flight request (the buffered
  // re-parse path).
  std::string burst;
  for (uint32_t id = 50; id < 66; ++id) {
    burst += BuildRequestFrame(MessageType::kPing, id);
  }
  burst += frame;  // one engine-bound request at the end
  ASSERT_TRUE(client.SendRaw(burst).ok());
  for (uint32_t id = 50; id < 66; ++id) {
    ASSERT_TRUE(client.RecvResponse(&header, &resp_body).ok());
    EXPECT_EQ(header.request_id, id);
  }
  ASSERT_TRUE(client.RecvResponse(&header, &resp_body).ok());
  EXPECT_EQ(header.request_id, 7u);

  daemon.Stop();
}

TEST(PodsdReactorTest, ThousandIdleConnectionsBoundedThreads) {
  // THE acceptance criterion: 1000 parked connections may not grow the
  // daemon's thread count at all — connections are epoll entries, not
  // threads. (The legacy front-end would need 1000 threads here.)
  WorkflowRegistry registry;
  registry.RegisterBuiltins();
  PodsDaemon::Options opts;
  opts.reactor_threads = 2;
  opts.engine_threads = 2;
  PodsDaemon daemon(&registry, opts);
  ASSERT_TRUE(daemon.Start().ok());

  // Let every daemon thread (acceptor, reactors, workers) come up before
  // taking the baseline.
  {
    PodsClient warm;
    ASSERT_TRUE(warm.Connect(daemon.port()).ok());
    ASSERT_TRUE(warm.Ping().ok());
  }
  const int baseline = CountProcessThreads();
  ASSERT_GT(baseline, 0);

  constexpr int kIdle = 1000;
  std::vector<std::unique_ptr<PodsClient>> idle;
  idle.reserve(kIdle);
  for (int i = 0; i < kIdle; ++i) {
    idle.push_back(std::make_unique<PodsClient>());
    ASSERT_TRUE(idle.back()->Connect(daemon.port()).ok()) << "conn " << i;
  }
  // Prove they are all real, live connections, not just accepted-and-
  // dropped fds: a sample of them must round-trip.
  for (int i = 0; i < kIdle; i += 97) {
    ASSERT_TRUE(idle[static_cast<size_t>(i)]->Ping().ok()) << "conn " << i;
  }

  const int with_idle = CountProcessThreads();
  EXPECT_EQ(with_idle, baseline)
      << kIdle << " idle connections grew the thread count from " << baseline
      << " to " << with_idle;

  // And the daemon still does real work while holding all of them.
  const Fig1Workflow fig1 = MakeFig1Workflow();
  const int attrs[] = {fig1.a3, fig1.a4, fig1.a5, fig1.a6, fig1.a7};
  CertifyRequest req;
  req.workflow = "fig1";
  req.items.push_back(ItemForMask(0b01101, attrs, 5));
  CertifyResponse resp;
  PodsClient active;
  ASSERT_TRUE(active.Connect(daemon.port()).ok());
  ASSERT_TRUE(active.Certify(req, /*batch=*/false, &resp).ok());

  StatSnapshot stats;
  ASSERT_TRUE(active.Stat(&stats).ok());
  uint64_t opened = 0, reactor_threads = 0;
  for (const auto& [k, v] : stats) {
    if (k == "connections_opened") opened = v;
    if (k == "reactor_threads") reactor_threads = v;
  }
  EXPECT_GE(opened, static_cast<uint64_t>(kIdle));
  EXPECT_EQ(reactor_threads, 2u);

  // Stop with 1000 parked connections must sever and join promptly.
  daemon.Stop();
  FrameHeader header;
  std::string body;
  EXPECT_FALSE(idle.front()->RecvResponse(&header, &body).ok());
  EXPECT_FALSE(idle.back()->RecvResponse(&header, &body).ok());
}

TEST(PodsdReactorTest, AdmissionSaturationIsTypedAndSurfacedInStat) {
  // max_pending=0: nothing can be admitted. The reactor must answer
  // RESOURCE_EXHAUSTED (with depth in the message), keep the connection,
  // and report the rejection through the admission_* STAT section.
  WorkflowRegistry registry;
  registry.RegisterBuiltins();
  PodsDaemon::Options opts;
  opts.reactor_threads = 1;
  opts.engine_threads = 2;
  opts.max_pending = 0;
  PodsDaemon daemon(&registry, opts);
  ASSERT_TRUE(daemon.Start().ok());

  const Fig1Workflow fig1 = MakeFig1Workflow();
  const int attrs[] = {fig1.a3, fig1.a4, fig1.a5, fig1.a6, fig1.a7};
  PodsClient client;
  ASSERT_TRUE(client.Connect(daemon.port()).ok());

  CertifyRequest req;
  req.workflow = "fig1";
  req.items.push_back(ItemForMask(0b101, attrs, 5));
  CertifyResponse resp;
  const Status s = client.Certify(req, /*batch=*/false, &resp);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.message();
  EXPECT_NE(s.message().find("admission depth"), std::string::npos)
      << s.message();

  // REGISTER passes the same gate.
  std::string bytes;
  ASSERT_TRUE(SerializeWorkflowBinary(*fig1.workflow, &bytes).ok());
  EXPECT_EQ(client.Register("gated", bytes).code(),
            StatusCode::kResourceExhausted);

  EXPECT_TRUE(client.Ping().ok());  // saturation never burns the connection

  StatSnapshot stats;
  ASSERT_TRUE(client.Stat(&stats).ok());
  uint64_t stat_version = 0, rejected = 0, max_depth = 123, depth = 123;
  for (const auto& [k, v] : stats) {
    if (k == "stat_version") stat_version = v;
    if (k == "admission_rejected") rejected = v;
    if (k == "admission_max_depth") max_depth = v;
    if (k == "admission_depth") depth = v;
  }
  EXPECT_EQ(stat_version, 3u);
  EXPECT_GE(rejected, 2u);
  EXPECT_EQ(max_depth, 0u);
  EXPECT_EQ(depth, 0u);  // every rejection released nothing; gate is clean

  daemon.Stop();
}

TEST(PodsdReactorTest, SharedMemoryBudgetTripsOnlyTheChargingRequest) {
  // A tiny daemon-wide pool: a heavy batch trips RESOURCE_EXHAUSTED, and
  // because the pool carries no trip state, the SAME connection can then
  // run a cheap request that fits. Degradation is per-request.
  WorkflowRegistry registry;
  registry.RegisterBuiltins();
  PodsDaemon::Options opts;
  opts.reactor_threads = 1;
  opts.engine_threads = 2;
  opts.memory_budget = 1;  // one byte: any engine charge trips
  PodsDaemon daemon(&registry, opts);
  ASSERT_TRUE(daemon.Start().ok());

  const Fig1Workflow fig1 = MakeFig1Workflow();
  const int attrs[] = {fig1.a3, fig1.a4, fig1.a5, fig1.a6, fig1.a7};
  PodsClient client;
  ASSERT_TRUE(client.Connect(daemon.port()).ok());
  CertifyRequest req;
  req.workflow = "fig1";
  for (uint32_t mask = 0; mask < 32; ++mask) {
    req.items.push_back(ItemForMask(mask, attrs, 5));
  }
  CertifyResponse resp;
  const Status s = client.Certify(req, /*batch=*/true, &resp);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.message();

  // The pool was fully released on that request's exit: STAT shows zero
  // bytes in use, and the connection still answers.
  EXPECT_TRUE(client.Ping().ok());
  StatSnapshot stats;
  ASSERT_TRUE(client.Stat(&stats).ok());
  uint64_t in_use = 123, exhausted = 0;
  for (const auto& [k, v] : stats) {
    if (k == "admission_memory_bytes") in_use = v;
    if (k == "admission_memory_exhausted") exhausted = v;
  }
  EXPECT_EQ(in_use, 0u);
  EXPECT_GE(exhausted, 1u);

  daemon.Stop();
}

}  // namespace
}  // namespace provview
