#include "common/task_graph.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/exec_control.h"

namespace provview {
namespace {

TEST(TaskGraphTest, RunsEveryTask) {
  TaskGraphExecutor executor(3);
  TaskGraph graph;
  std::atomic<int> counter(0);
  for (int i = 0; i < 200; ++i) {
    graph.Add([&counter] { counter.fetch_add(1); });
  }
  EXPECT_TRUE(graph.Run(&executor).ok());
  EXPECT_EQ(counter.load(), 200);
}

TEST(TaskGraphTest, DependenciesOrderExecution) {
  TaskGraphExecutor executor(4);
  TaskGraph graph;
  // A linear chain plus a diamond; every task records its position, and
  // every edge must be respected in the observed sequence.
  std::mutex mu;
  std::vector<int> order;
  auto record = [&](int id) {
    std::lock_guard<std::mutex> g(mu);
    order.push_back(id);
  };
  const TaskGraph::TaskId a = graph.Add([&] { record(0); });
  const TaskGraph::TaskId b = graph.Add([&] { record(1); }, {a});
  const TaskGraph::TaskId c = graph.Add([&] { record(2); }, {a});
  const TaskGraph::TaskId d = graph.Add([&] { record(3); }, {b, c});
  graph.Add([&] { record(4); }, {d});
  EXPECT_TRUE(graph.Run(&executor).ok());
  ASSERT_EQ(order.size(), 5u);
  auto pos = [&](int id) {
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == id) return i;
    }
    ADD_FAILURE() << "task " << id << " never ran";
    return order.size();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(0), pos(2));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(3));
  EXPECT_LT(pos(3), pos(4));
}

TEST(TaskGraphTest, AddDepOrdersExecutionAfterBothTasksExist) {
  TaskGraphExecutor executor(2);
  TaskGraph graph;
  std::atomic<bool> first_done(false);
  bool dep_respected = false;
  const TaskGraph::TaskId late = graph.Add(
      [&] { dep_respected = first_done.load(std::memory_order_acquire); });
  const TaskGraph::TaskId early = graph.Add(
      [&] { first_done.store(true, std::memory_order_release); });
  graph.AddDep(late, early);
  EXPECT_TRUE(graph.Run(&executor).ok());
  EXPECT_TRUE(dep_respected);
}

TEST(TaskGraphTest, StealingCoversSkewedFanOut) {
  // All tasks are released by one root onto one worker's deque; the others
  // must steal to finish. Every task records the thread it ran on — with 4
  // workers plus the helping caller and deliberately slow tasks, at least
  // two distinct threads should participate, and the count must be exact.
  TaskGraphExecutor executor(4);
  TaskGraph graph;
  std::atomic<int> counter(0);
  std::mutex mu;
  std::set<std::thread::id> threads;
  const TaskGraph::TaskId root = graph.Add([] {});
  for (int i = 0; i < 64; ++i) {
    graph.Add(
        [&] {
          volatile int sink = 0;
          for (int k = 0; k < 20000; ++k) sink += k;
          counter.fetch_add(1);
          std::lock_guard<std::mutex> g(mu);
          threads.insert(std::this_thread::get_id());
        },
        {root});
  }
  EXPECT_TRUE(graph.Run(&executor).ok());
  EXPECT_EQ(counter.load(), 64);
  EXPECT_GE(threads.size(), 1u);  // >= 2 on real multicore, 1 is legal
}

TEST(TaskGraphTest, ExceptionPropagatesAndSkipsRemainder) {
  TaskGraphExecutor executor(2);
  TaskGraph graph;
  std::atomic<int> ran_after(0);
  const TaskGraph::TaskId boom =
      graph.Add([] { throw std::runtime_error("task exploded"); });
  for (int i = 0; i < 32; ++i) {
    graph.Add([&ran_after] { ran_after.fetch_add(1); }, {boom});
  }
  EXPECT_THROW(graph.Run(&executor), std::runtime_error);
  // Every successor saw the cancelled flag: none of their bodies ran.
  EXPECT_EQ(ran_after.load(), 0);
}

TEST(TaskGraphTest, CancellationMidGraphSkipsRemainingBodies) {
  TaskGraphExecutor executor(2);
  ExecControl control;
  TaskGraph graph;
  std::atomic<int> ran(0);
  // A chain: the second task cancels the control; everything downstream
  // must be skipped while the graph still drains and Run returns the typed
  // status.
  const TaskGraph::TaskId first = graph.Add([&ran] { ran.fetch_add(1); });
  const TaskGraph::TaskId trip =
      graph.Add([&control] { control.Cancel(); }, {first});
  TaskGraph::TaskId prev = trip;
  for (int i = 0; i < 32; ++i) {
    prev = graph.Add([&ran] { ran.fetch_add(1); }, {prev});
  }
  const Status status = graph.Run(&executor, &control);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ran.load(), 1);
}

TEST(TaskGraphTest, RunInlineIsDeterministicFifo) {
  // Without an executor the graph runs sequentially: ready tasks execute in
  // task-id-seeded FIFO order, so the observed order is reproducible.
  std::vector<int> first_order;
  for (int trial = 0; trial < 2; ++trial) {
    TaskGraph graph;
    std::vector<int> order;
    const TaskGraph::TaskId a = graph.Add([&] { order.push_back(0); });
    graph.Add([&] { order.push_back(1); });
    const TaskGraph::TaskId c = graph.Add([&] { order.push_back(2); }, {a});
    graph.Add([&] { order.push_back(3); }, {c});
    graph.Add([&] { order.push_back(4); });
    EXPECT_TRUE(graph.RunInline().ok());
    ASSERT_EQ(order.size(), 5u);
    if (trial == 0) {
      first_order = order;
    } else {
      EXPECT_EQ(order, first_order);
    }
  }
  // Seeded in id order: 0 and 1 and 4 are roots (FIFO), then released 2, 3.
  EXPECT_EQ(first_order, (std::vector<int>{0, 1, 4, 2, 3}));
}

TEST(TaskGraphTest, NullExecutorDegradesToInline) {
  TaskGraph graph;
  int ran = 0;
  graph.Add([&ran] { ++ran; });
  EXPECT_TRUE(graph.Run(nullptr).ok());
  EXPECT_EQ(ran, 1);
}

TEST(TaskGraphTest, NestedRunFromWorkerDoesNotDeadlock) {
  // A task graph whose tasks each run their own child graph on the same
  // executor — the pattern BuildWorkflowTables-inside-CertifyWorkflowBatch
  // hits. Callers always help, so a 1-worker executor must still finish.
  TaskGraphExecutor executor(1);
  TaskGraph outer;
  std::atomic<int> inner_total(0);
  for (int i = 0; i < 8; ++i) {
    outer.Add([&executor, &inner_total] {
      TaskGraph inner;
      for (int j = 0; j < 16; ++j) {
        inner.Add([&inner_total] { inner_total.fetch_add(1); });
      }
      EXPECT_TRUE(inner.Run(&executor).ok());
    });
  }
  EXPECT_TRUE(outer.Run(&executor).ok());
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(TaskGraphTest, ManyGraphsInterleaveOnOneExecutor) {
  // The daemon sharing model: concurrent Run() calls from several threads
  // against one executor.
  TaskGraphExecutor executor(3);
  std::atomic<int> total(0);
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&executor, &total] {
      for (int g = 0; g < 10; ++g) {
        TaskGraph graph;
        const TaskGraph::TaskId root =
            graph.Add([&total] { total.fetch_add(1); });
        for (int i = 0; i < 10; ++i) {
          graph.Add([&total] { total.fetch_add(1); }, {root});
        }
        EXPECT_TRUE(graph.Run(&executor).ok());
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(total.load(), 4 * 10 * 11);
}

TEST(TaskGraphTest, AdmissionGateBoundsAndReleases) {
  TaskGraphExecutor executor(1, /*max_pending=*/10);
  EXPECT_EQ(executor.max_pending(), 10);
  EXPECT_TRUE(executor.TryAdmit(6));
  EXPECT_EQ(executor.admitted_units(), 6);
  EXPECT_FALSE(executor.TryAdmit(5));  // 6 + 5 > 10
  EXPECT_TRUE(executor.TryAdmit(4));
  EXPECT_FALSE(executor.TryAdmit(1));  // full
  executor.Release(4);
  EXPECT_TRUE(executor.TryAdmit(1));
  executor.Release(7);
  EXPECT_EQ(executor.admitted_units(), 0);
}

TEST(TaskGraphTest, AdmissionTicketReleasesOnEveryPath) {
  TaskGraphExecutor executor(1, /*max_pending=*/4);
  ASSERT_TRUE(executor.TryAdmit(3));
  {
    AdmissionTicket ticket(&executor, 3);
    EXPECT_EQ(executor.admitted_units(), 3);
    // Move keeps a single owner.
    AdmissionTicket moved(std::move(ticket));
    EXPECT_EQ(executor.admitted_units(), 3);
  }
  EXPECT_EQ(executor.admitted_units(), 0);
}

TEST(TaskGraphTest, EmptyGraphCompletes) {
  TaskGraphExecutor executor(2);
  TaskGraph graph;
  EXPECT_TRUE(graph.Run(&executor).ok());
  TaskGraph inline_graph;
  EXPECT_TRUE(inline_graph.RunInline().ok());
}

}  // namespace
}  // namespace provview
