// Malformed-input corpus for the podsd wire protocol: every decoder must
// reject truncated, oversized, and corrupted inputs with a typed Status —
// never crash, never over-read, never allocate from a forged count — and a
// live daemon must contain each failure to the connection or request that
// caused it (the blast-radius table in server/connection.h).
#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "common/rng.h"
#include "secureview/serialization.h"
#include "server/client.h"
#include "server/daemon.h"
#include "server/protocol.h"
#include "server/registry.h"
#include "workflow/fig1_workflow.h"

namespace provview {
namespace {

// -- frame header -----------------------------------------------------------

TEST(FrameHeaderTest, RoundTrip) {
  FrameHeader h;
  h.type = static_cast<uint16_t>(MessageType::kCertify);
  h.request_id = 0xDEADBEEF;
  h.body_len = 123;
  std::string bytes;
  EncodeFrameHeader(h, &bytes);
  ASSERT_EQ(bytes.size(), kFrameHeaderSize);

  FrameHeader decoded;
  ASSERT_TRUE(DecodeFrameHeader(bytes, &decoded).ok());
  EXPECT_EQ(decoded.magic, kFrameMagic);
  EXPECT_EQ(decoded.version, kProtocolVersion);
  EXPECT_EQ(decoded.type, h.type);
  EXPECT_EQ(decoded.request_id, h.request_id);
  EXPECT_EQ(decoded.body_len, h.body_len);
}

TEST(FrameHeaderTest, RejectsWrongSize) {
  FrameHeader h;
  std::string bytes;
  EncodeFrameHeader(h, &bytes);
  FrameHeader out;
  EXPECT_FALSE(DecodeFrameHeader(bytes.substr(0, 15), &out).ok());
  EXPECT_FALSE(DecodeFrameHeader(bytes + 'x', &out).ok());
  EXPECT_FALSE(DecodeFrameHeader("", &out).ok());
}

TEST(FrameHeaderTest, RejectsBadMagicVersionAndOversizedBody) {
  FrameHeader h;
  h.body_len = 8;
  std::string good;
  EncodeFrameHeader(h, &good);

  std::string bad_magic = good;
  bad_magic[0] ^= 0xFF;
  FrameHeader out;
  EXPECT_EQ(DecodeFrameHeader(bad_magic, &out).code(),
            StatusCode::kInvalidArgument);

  std::string bad_version = good;
  bad_version[4] = 0x7F;
  EXPECT_EQ(DecodeFrameHeader(bad_version, &out).code(),
            StatusCode::kInvalidArgument);

  FrameHeader huge;
  huge.body_len = kMaxBodyLen + 1;
  std::string oversized;
  EncodeFrameHeader(huge, &oversized);
  EXPECT_EQ(DecodeFrameHeader(oversized, &out).code(),
            StatusCode::kInvalidArgument);
}

// -- certify request --------------------------------------------------------

CertifyRequest SampleRequest() {
  CertifyRequest req;
  req.workflow = "fig1";
  req.deadline_ms = 250;
  req.memory_budget = 1 << 20;
  req.items.push_back(CertifyItem{3, {1, 2, 5}});
  req.items.push_back(CertifyItem{2, {}});
  return req;
}

TEST(CertifyRequestTest, RoundTripSingleAndBatch) {
  CertifyRequest req = SampleRequest();
  req.items.resize(1);
  std::string body;
  EncodeCertifyRequest(req, /*batch=*/false, &body);
  CertifyRequest out;
  ASSERT_TRUE(DecodeCertifyRequest(body, /*batch=*/false, &out).ok());
  EXPECT_EQ(out.workflow, "fig1");
  EXPECT_EQ(out.deadline_ms, 250);
  EXPECT_EQ(out.memory_budget, 1 << 20);
  ASSERT_EQ(out.items.size(), 1u);
  EXPECT_EQ(out.items[0].gamma, 3);
  EXPECT_EQ(out.items[0].hidden_attrs, (std::vector<uint32_t>{1, 2, 5}));

  CertifyRequest batch = SampleRequest();
  std::string batch_body;
  EncodeCertifyRequest(batch, /*batch=*/true, &batch_body);
  CertifyRequest batch_out;
  ASSERT_TRUE(
      DecodeCertifyRequest(batch_body, /*batch=*/true, &batch_out).ok());
  ASSERT_EQ(batch_out.items.size(), 2u);
  EXPECT_EQ(batch_out.items[1].gamma, 2);
  EXPECT_TRUE(batch_out.items[1].hidden_attrs.empty());
}

TEST(CertifyRequestTest, EveryTruncationIsRejected) {
  std::string body;
  EncodeCertifyRequest(SampleRequest(), /*batch=*/true, &body);
  CertifyRequest out;
  ASSERT_TRUE(DecodeCertifyRequest(body, /*batch=*/true, &out).ok());
  // Chopping ANY suffix off a valid body must fail cleanly: the decoder may
  // not over-read past the buffer or accept a half-request.
  for (size_t len = 0; len < body.size(); ++len) {
    CertifyRequest truncated;
    EXPECT_FALSE(
        DecodeCertifyRequest(body.substr(0, len), /*batch=*/true, &truncated)
            .ok())
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(CertifyRequestTest, RejectsTrailingBytes) {
  std::string body;
  EncodeCertifyRequest(SampleRequest(), /*batch=*/true, &body);
  body += '\0';
  CertifyRequest out;
  EXPECT_EQ(DecodeCertifyRequest(body, /*batch=*/true, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(CertifyRequestTest, RejectsSemanticGarbage) {
  const auto decode = [](const CertifyRequest& req) {
    std::string body;
    EncodeCertifyRequest(req, /*batch=*/false, &body);
    CertifyRequest out;
    return DecodeCertifyRequest(body, /*batch=*/false, &out);
  };

  CertifyRequest bad_deadline = SampleRequest();
  bad_deadline.items.resize(1);
  bad_deadline.deadline_ms = -1;
  EXPECT_EQ(decode(bad_deadline).code(), StatusCode::kInvalidArgument);

  CertifyRequest bad_budget = SampleRequest();
  bad_budget.items.resize(1);
  bad_budget.memory_budget = -5;
  EXPECT_EQ(decode(bad_budget).code(), StatusCode::kInvalidArgument);

  CertifyRequest bad_gamma = SampleRequest();
  bad_gamma.items.resize(1);
  bad_gamma.items[0].gamma = 0;
  EXPECT_EQ(decode(bad_gamma).code(), StatusCode::kInvalidArgument);

  CertifyRequest long_name = SampleRequest();
  long_name.items.resize(1);
  long_name.workflow.assign(kMaxWorkflowNameLen + 1, 'w');
  EXPECT_EQ(decode(long_name).code(), StatusCode::kInvalidArgument);
}

TEST(CertifyRequestTest, ForgedCountsCannotForceAllocation) {
  // A forged hidden-attr count of ~4 billion: the decoder must notice the
  // body is far too short BEFORE reserving, and reject.
  std::string body;
  {
    CertifyRequest req;
    req.workflow = "fig1";
    req.items.push_back(CertifyItem{1, {}});
    EncodeCertifyRequest(req, /*batch=*/false, &body);
  }
  // Overwrite the trailing hidden-count u32 (last 4 bytes) with 0xFFFFFFFF.
  for (size_t i = body.size() - 4; i < body.size(); ++i) body[i] = '\xFF';
  CertifyRequest out;
  EXPECT_EQ(DecodeCertifyRequest(body, /*batch=*/false, &out).code(),
            StatusCode::kInvalidArgument);

  // Same for a forged batch item count.
  std::string batch_body;
  EncodeCertifyRequest(SampleRequest(), /*batch=*/true, &batch_body);
  CertifyRequest batch_out;
  std::string forged = batch_body;
  // Batch count sits right after name + two i64s.
  const size_t count_off = 4 + 4 /*"fig1"*/ + 8 + 8;
  for (size_t i = 0; i < 4; ++i) forged[count_off + i] = '\xFF';
  EXPECT_FALSE(
      DecodeCertifyRequest(forged, /*batch=*/true, &batch_out).ok());
}

// -- register / unregister --------------------------------------------------

std::string SampleWorkflowBytes() {
  const Fig1Workflow fig1 = MakeFig1Workflow();
  std::string bytes;
  EXPECT_TRUE(SerializeWorkflowBinary(*fig1.workflow, &bytes).ok());
  return bytes;
}

TEST(RegisterRequestTest, RoundTrip) {
  RegisterRequest req;
  req.name = "uploaded";
  req.workflow_bytes = SampleWorkflowBytes();
  std::string body;
  EncodeRegisterRequest(req, &body);
  RegisterRequest out;
  ASSERT_TRUE(DecodeRegisterRequest(body, &out).ok());
  EXPECT_EQ(out.name, "uploaded");
  EXPECT_EQ(out.workflow_bytes, req.workflow_bytes);
}

TEST(RegisterRequestTest, EveryTruncationIsRejectedSomewhere) {
  // The register body is name + raw workflow bytes, so a prefix that cuts
  // inside the workflow payload still decodes at the protocol layer — the
  // guarantee is layered: EVERY strict prefix must fail either the request
  // decode or the workflow deserialize. No prefix may produce a workflow.
  RegisterRequest req;
  req.name = "uploaded";
  req.workflow_bytes = SampleWorkflowBytes();
  std::string body;
  EncodeRegisterRequest(req, &body);
  for (size_t len = 0; len < body.size(); ++len) {
    RegisterRequest out;
    const Status decoded = DecodeRegisterRequest(body.substr(0, len), &out);
    if (!decoded.ok()) continue;
    EXPECT_FALSE(DeserializeWorkflowBinary(out.workflow_bytes).ok())
        << "prefix of " << len << " bytes produced a workflow";
  }
}

TEST(RegisterRequestTest, RejectsEmptyNameAndMissingBytes) {
  RegisterRequest req;
  req.name = "";
  req.workflow_bytes = "x";
  std::string body;
  EncodeRegisterRequest(req, &body);
  RegisterRequest out;
  EXPECT_EQ(DecodeRegisterRequest(body, &out).code(),
            StatusCode::kInvalidArgument);

  RegisterRequest no_bytes;
  no_bytes.name = "named";
  std::string body2;
  EncodeRegisterRequest(no_bytes, &body2);
  EXPECT_EQ(DecodeRegisterRequest(body2, &out).code(),
            StatusCode::kInvalidArgument);

  RegisterRequest long_name;
  long_name.name.assign(kMaxWorkflowNameLen + 1, 'n');
  long_name.workflow_bytes = "x";
  std::string body3;
  EncodeRegisterRequest(long_name, &body3);
  EXPECT_EQ(DecodeRegisterRequest(body3, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(RegisterRequestTest, WorkflowByteFlipFuzzNeverCrashes) {
  // Byte-flip fuzz across the FULL register path — request decode plus
  // workflow deserialize. Hostile bytes must come back as a typed Status
  // (or a clean decode of a different valid workflow), never a crash or a
  // PV_CHECK abort.
  RegisterRequest req;
  req.name = "fuzzed";
  req.workflow_bytes = SampleWorkflowBytes();
  std::string body;
  EncodeRegisterRequest(req, &body);

  Rng rng(0x72656766u);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = body;
    const int flips = 1 + static_cast<int>(rng.NextBelow(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBelow(mutated.size());
      mutated[pos] ^= static_cast<char>(1u << rng.NextBelow(8));
    }
    RegisterRequest out;
    if (DecodeRegisterRequest(mutated, &out).ok()) {
      (void)DeserializeWorkflowBinary(out.workflow_bytes);  // must not crash
    }
  }
}

TEST(RegisterResponseTest, RoundTripAndTruncationSweep) {
  RegisterResponse resp;
  resp.num_attrs = 9;
  resp.num_modules = 4;
  resp.num_private_modules = 3;
  std::string body;
  EncodeRegisterResponse(resp, &body);
  RegisterResponse out;
  ASSERT_TRUE(DecodeRegisterResponse(body, &out).ok());
  EXPECT_EQ(out.num_attrs, 9u);
  EXPECT_EQ(out.num_modules, 4u);
  EXPECT_EQ(out.num_private_modules, 3u);

  for (size_t len = 0; len < body.size(); ++len) {
    RegisterResponse truncated;
    EXPECT_FALSE(
        DecodeRegisterResponse(body.substr(0, len), &truncated).ok());
  }
  EXPECT_FALSE(DecodeRegisterResponse(body + 'x', &out).ok());
}

TEST(UnregisterRequestTest, RoundTripTruncationAndTrailing) {
  std::string body;
  EncodeUnregisterRequest("doomed", &body);
  std::string name;
  ASSERT_TRUE(DecodeUnregisterRequest(body, &name).ok());
  EXPECT_EQ(name, "doomed");

  for (size_t len = 0; len < body.size(); ++len) {
    std::string out;
    EXPECT_FALSE(DecodeUnregisterRequest(body.substr(0, len), &out).ok())
        << "prefix of " << len << " bytes decoded";
  }
  EXPECT_EQ(DecodeUnregisterRequest(body + 'x', &name).code(),
            StatusCode::kInvalidArgument);

  std::string empty_body;
  EncodeUnregisterRequest("", &empty_body);
  EXPECT_EQ(DecodeUnregisterRequest(empty_body, &name).code(),
            StatusCode::kInvalidArgument);
}

// -- responses --------------------------------------------------------------

TEST(CertifyResponseTest, RoundTripAndTruncationSweep) {
  CertifyResponse resp;
  resp.checker_calls = 42;
  resp.cache_hits = 7;
  resp.entries.push_back(CertifyEntry{true, {4, 1, 2}, {0, 2}});
  resp.entries.push_back(CertifyEntry{false, {}, {}});
  std::string body;
  EncodeCertifyResponse(resp, &body);

  CertifyResponse out;
  ASSERT_TRUE(DecodeCertifyResponse(body, &out).ok());
  EXPECT_EQ(out.checker_calls, 42u);
  EXPECT_EQ(out.cache_hits, 7u);
  ASSERT_EQ(out.entries.size(), 2u);
  EXPECT_TRUE(out.entries[0].certified);
  EXPECT_EQ(out.entries[0].module_gammas, (std::vector<int64_t>{4, 1, 2}));
  EXPECT_EQ(out.entries[0].required_privatizations,
            (std::vector<uint32_t>{0, 2}));

  for (size_t len = 0; len < body.size(); ++len) {
    CertifyResponse truncated;
    EXPECT_FALSE(DecodeCertifyResponse(body.substr(0, len), &truncated).ok());
  }
}

TEST(StatResponseTest, RoundTripAndTruncationSweep) {
  StatSnapshot stats{{"requests_total", 10}, {"requests_ok", 9}};
  std::string body;
  EncodeStatResponse(stats, &body);
  StatSnapshot out;
  ASSERT_TRUE(DecodeStatResponse(body, &out).ok());
  EXPECT_EQ(out, stats);

  for (size_t len = 0; len < body.size(); ++len) {
    StatSnapshot truncated;
    EXPECT_FALSE(DecodeStatResponse(body.substr(0, len), &truncated).ok());
  }
}

TEST(ResponseBodyTest, StatusPrefixRoundTrip) {
  std::string body;
  EncodeStatusPrefix(Status::DeadlineExceeded("too slow"), &body);
  body += "PAYLOAD-IGNORED-ON-ERROR";
  Status status;
  std::string_view payload;
  ASSERT_TRUE(ParseResponseBody(body, &status, &payload).ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(status.message(), "too slow");

  std::string ok_body;
  EncodeStatusPrefix(Status::OK(), &ok_body);
  ok_body += "payload";
  ASSERT_TRUE(ParseResponseBody(ok_body, &status, &payload).ok());
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(payload, "payload");
}

TEST(ResponseBodyTest, CorruptionFuzzNeverCrashes) {
  // Byte-flip fuzz over a valid certify-response body: every corruption
  // must produce SOME Status (either a clean decode of different values or
  // a typed rejection) without crashing or tripping sanitizers.
  CertifyResponse resp;
  resp.entries.push_back(CertifyEntry{true, {3, 3, 3}, {1}});
  std::string ok_payload;
  EncodeCertifyResponse(resp, &ok_payload);

  Rng rng(0x636f7270u);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = ok_payload;
    const int flips = 1 + static_cast<int>(rng.NextBelow(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBelow(mutated.size());
      mutated[pos] ^= static_cast<char>(1u << rng.NextBelow(8));
    }
    CertifyResponse out;
    (void)DecodeCertifyResponse(mutated, &out);  // must simply not crash
  }
}

// -- live daemon: the blast-radius table ------------------------------------

class DaemonRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_.RegisterBuiltins();
    daemon_ = std::make_unique<PodsDaemon>(&registry_);
    ASSERT_TRUE(daemon_->Start().ok());
  }
  void TearDown() override { daemon_->Stop(); }

  WorkflowRegistry registry_;
  std::unique_ptr<PodsDaemon> daemon_;
};

TEST_F(DaemonRobustnessTest, BadMagicGetsErrorAndConnectionCloses) {
  PodsClient client;
  ASSERT_TRUE(client.Connect(daemon_->port()).ok());

  std::string frame = BuildRequestFrame(MessageType::kPing, 1);
  frame[0] ^= 0x55;  // corrupt the magic
  ASSERT_TRUE(client.SendRaw(frame).ok());

  FrameHeader header;
  std::string body;
  ASSERT_TRUE(client.RecvResponse(&header, &body).ok());
  Status status;
  std::string_view payload;
  ASSERT_TRUE(ParseResponseBody(body, &status, &payload).ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);

  // Framing is untrusted after a bad header: the daemon hangs up.
  ASSERT_TRUE(client.SendRaw(BuildRequestFrame(MessageType::kPing, 2)).ok());
  EXPECT_FALSE(client.RecvResponse(&header, &body).ok());

  // ...but OTHER connections are unaffected.
  PodsClient fresh;
  ASSERT_TRUE(fresh.Connect(daemon_->port()).ok());
  EXPECT_TRUE(fresh.Ping().ok());
}

TEST_F(DaemonRobustnessTest, OversizedBodyLenClosesConnection) {
  PodsClient client;
  ASSERT_TRUE(client.Connect(daemon_->port()).ok());
  FrameHeader h;
  h.type = static_cast<uint16_t>(MessageType::kCertify);
  h.body_len = kMaxBodyLen + 1;  // forged length; no body follows
  std::string frame;
  EncodeFrameHeader(h, &frame);
  ASSERT_TRUE(client.SendRaw(frame).ok());

  FrameHeader header;
  std::string body;
  ASSERT_TRUE(client.RecvResponse(&header, &body).ok());
  Status status;
  std::string_view payload;
  ASSERT_TRUE(ParseResponseBody(body, &status, &payload).ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(DaemonRobustnessTest, UnknownTypeSurvivesConnection) {
  PodsClient client;
  ASSERT_TRUE(client.Connect(daemon_->port()).ok());
  FrameHeader h;
  h.type = 0x00EE;  // no such request type
  h.request_id = 9;
  std::string frame;
  EncodeFrameHeader(h, &frame);
  ASSERT_TRUE(client.SendRaw(frame).ok());

  FrameHeader header;
  std::string body;
  ASSERT_TRUE(client.RecvResponse(&header, &body).ok());
  EXPECT_EQ(header.request_id, 9u);
  Status status;
  std::string_view payload;
  ASSERT_TRUE(ParseResponseBody(body, &status, &payload).ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);

  // Well-framed garbage does NOT cost the connection.
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(DaemonRobustnessTest, MalformedBodySurvivesConnection) {
  PodsClient client;
  ASSERT_TRUE(client.Connect(daemon_->port()).ok());
  const std::string garbage = "\x01\x02\x03 not a certify body";
  ASSERT_TRUE(
      client.SendRaw(BuildRequestFrame(MessageType::kCertify, 1, garbage))
          .ok());
  FrameHeader header;
  std::string body;
  ASSERT_TRUE(client.RecvResponse(&header, &body).ok());
  Status status;
  std::string_view payload;
  ASSERT_TRUE(ParseResponseBody(body, &status, &payload).ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(DaemonRobustnessTest, HiddenAttrOutOfRangeIsTyped) {
  PodsClient client;
  ASSERT_TRUE(client.Connect(daemon_->port()).ok());
  CertifyRequest req;
  req.workflow = "fig1";
  req.items.push_back(CertifyItem{2, {99999}});  // far past the catalog
  CertifyResponse resp;
  const Status s = client.Certify(req, /*batch=*/false, &resp);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(DaemonRobustnessTest, HostileRegisterBodiesAreTypedAndContained) {
  PodsClient client;
  ASSERT_TRUE(client.Connect(daemon_->port()).ok());

  // Garbage workflow bytes: typed rejection, connection survives, nothing
  // registered.
  RegisterRequest req;
  req.name = "hostile";
  req.workflow_bytes = "these are not workflow bytes";
  std::string body;
  EncodeRegisterRequest(req, &body);
  std::string payload;
  const Status s = client.RoundTrip(
      BuildRequestFrame(MessageType::kRegister, 1, body), &payload);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_EQ(registry_.Find("hostile"), nullptr);

  // Registering over a builtin name is a typed duplicate rejection.
  EXPECT_EQ(client.Register("fig1", SampleWorkflowBytes()).code(),
            StatusCode::kInvalidArgument);

  // Unregistering the unknown is NOT_FOUND; the connection keeps serving.
  EXPECT_EQ(client.Unregister("never-registered").code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(DaemonRobustnessTest, PeerHangupMidFrameIsQuiet) {
  // Send half a header, then vanish. The daemon must shrug (no counter
  // corruption, no wedge) and keep serving others.
  {
    PodsClient client;
    ASSERT_TRUE(client.Connect(daemon_->port()).ok());
    ASSERT_TRUE(client.SendRaw("PODS").ok());
  }  // destructor closes the socket mid-frame
  PodsClient fresh;
  ASSERT_TRUE(fresh.Connect(daemon_->port()).ok());
  EXPECT_TRUE(fresh.Ping().ok());
}

}  // namespace
}  // namespace provview
