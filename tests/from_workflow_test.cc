#include <gtest/gtest.h>

#include "generators/families.h"
#include "generators/random_workflow.h"
#include "privacy/workflow_privacy.h"
#include "secureview/feasibility.h"
#include "secureview/from_workflow.h"
#include "secureview/solvers.h"
#include "workflow/fig1_workflow.h"

namespace provview {
namespace {

// m2 and m3 have a single boolean output, so their standalone privacy is
// capped at Γ = 2. For Γ = 4 experiments they must be public (their
// behavior — AND / OR — is indeed "known" in the paper's narrative).
Fig1Workflow MakeFig1WithPublicGates() {
  Fig1Workflow fig = MakeFig1Workflow();
  fig.workflow->mutable_module(fig.m2_index)->set_public(true);
  fig.workflow->mutable_module(fig.m3_index)->set_public(true);
  return fig;
}

TEST(FromWorkflowTest, Fig1SetInstanceStructure) {
  Fig1Workflow fig = MakeFig1WithPublicGates();
  SecureViewInstance inst =
      InstanceFromWorkflow(*fig.workflow, 4, ConstraintKind::kSet);
  EXPECT_EQ(inst.num_attrs, 7);
  EXPECT_EQ(inst.num_modules(), 3);
  EXPECT_TRUE(inst.Validate().ok());
  EXPECT_EQ(inst.PublicModules().size(), 2u);
  // m1's set options must include the output pairs of Example 3.
  const SvModule& m1 = inst.modules[0];
  bool found_pair = false;
  for (const SetOption& o : m1.set_options) {
    if (o.hidden_inputs.empty() && o.hidden_outputs.size() == 2) {
      found_pair = true;
    }
  }
  EXPECT_TRUE(found_pair);
}

TEST(FromWorkflowTest, Fig1AllPrivateGamma2) {
  Fig1Workflow fig = MakeFig1Workflow();
  SecureViewInstance inst =
      InstanceFromWorkflow(*fig.workflow, 2, ConstraintKind::kSet);
  EXPECT_TRUE(inst.Validate().ok());
  EXPECT_EQ(inst.PublicModules().size(), 0u);
  SvResult exact = SolveExact(inst);
  ASSERT_TRUE(exact.status.ok());
  EXPECT_TRUE(IsFeasible(inst, exact.solution));
  EXPECT_TRUE(VerifySolutionSemantics(*fig.workflow, exact.solution, 2));
}

TEST(FromWorkflowTest, Fig1CardinalityInstanceStructure) {
  Fig1Workflow fig = MakeFig1Workflow();
  SecureViewInstance inst =
      InstanceFromWorkflow(*fig.workflow, 2, ConstraintKind::kCardinality);
  EXPECT_TRUE(inst.Validate().ok());
  for (int i : inst.PrivateModules()) {
    EXPECT_FALSE(inst.modules[static_cast<size_t>(i)].card_options.empty());
  }
}

TEST(FromWorkflowTest, ExactSolutionIsSemanticallyPrivate) {
  // End-to-end: optimize on the derived instance, then certify the result
  // against the actual module functionality (Theorem 4/8 route).
  Fig1Workflow fig = MakeFig1WithPublicGates();
  for (int64_t gamma : {2, 4}) {
    SecureViewInstance inst =
        InstanceFromWorkflow(*fig.workflow, gamma, ConstraintKind::kSet);
    SvResult exact = SolveExact(inst);
    ASSERT_TRUE(exact.status.ok());
    EXPECT_TRUE(IsFeasible(inst, exact.solution));
    EXPECT_TRUE(VerifySolutionSemantics(*fig.workflow, exact.solution, gamma));
  }
}

TEST(FromWorkflowTest, CardinalitySolutionAlsoCertifies) {
  // Cardinality options are shape-based; any attribute choice meeting the
  // frontier must be standalone-safe, hence certify.
  Fig1Workflow fig = MakeFig1WithPublicGates();
  SecureViewInstance inst =
      InstanceFromWorkflow(*fig.workflow, 4, ConstraintKind::kCardinality);
  SvResult exact = SolveExact(inst);
  ASSERT_TRUE(exact.status.ok());
  EXPECT_TRUE(VerifySolutionSemantics(*fig.workflow, exact.solution, 4));
}

TEST(FromWorkflowTest, UnionOfStandaloneOptimaIsFeasibleButMaybeCostly) {
  Fig1Workflow fig = MakeFig1WithPublicGates();
  SecureViewSolution baseline = UnionOfStandaloneOptima(*fig.workflow, 4);
  EXPECT_TRUE(VerifySolutionSemantics(*fig.workflow, baseline, 4));
  SecureViewInstance inst =
      InstanceFromWorkflow(*fig.workflow, 4, ConstraintKind::kSet);
  SvResult exact = SolveExact(inst);
  ASSERT_TRUE(exact.status.ok());
  EXPECT_GE(baseline.TotalCost(inst), exact.cost - 1e-9);
}

TEST(FromWorkflowTest, RandomWorkflowsEndToEnd) {
  for (int seed = 0; seed < 4; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 37 + 11);
    RandomWorkflowOptions opt;
    opt.num_modules = 4;
    opt.max_inputs = 2;
    opt.max_outputs = 2;
    GeneratedWorkflow gen = MakeRandomWorkflow(opt, &rng);
    SecureViewInstance inst =
        InstanceFromWorkflow(*gen.workflow, 2, ConstraintKind::kSet);
    SvResult exact = SolveExact(inst);
    ASSERT_TRUE(exact.status.ok());
    EXPECT_TRUE(VerifySolutionSemantics(*gen.workflow, exact.solution, 2));
    // Greedy upper-bounds and certifies too.
    SvResult greedy = SolveGreedyPerModule(inst);
    EXPECT_TRUE(VerifySolutionSemantics(*gen.workflow, greedy.solution, 2));
    EXPECT_GE(greedy.cost, exact.cost - 1e-9);
  }
}

TEST(FromWorkflowTest, PublicModulesCarriedIntoInstance) {
  Rng rng(7);
  Example7Chain chain = MakeExample7Chain(2, &rng);
  chain.workflow->mutable_module(chain.constant_index)
      ->set_privatization_cost(4.0);
  SecureViewInstance inst =
      InstanceFromWorkflow(*chain.workflow, 2, ConstraintKind::kSet);
  ASSERT_EQ(inst.PublicModules(),
            (std::vector<int>{chain.constant_index}));
  EXPECT_DOUBLE_EQ(
      inst.modules[static_cast<size_t>(chain.constant_index)]
          .privatization_cost,
      4.0);
  // The optimizer accounts for privatization: any solution hiding the
  // intermediate attributes must pay for privatizing the constant module.
  SvResult exact = SolveExact(inst);
  ASSERT_TRUE(exact.status.ok());
  EXPECT_TRUE(IsFeasible(inst, exact.solution));
  EXPECT_TRUE(VerifySolutionSemantics(*chain.workflow, exact.solution, 2));
}

}  // namespace
}  // namespace provview
