#include <gtest/gtest.h>

#include "privacy/standalone_privacy.h"
#include "relation/relation_ops.h"
#include "workflow/fig1_workflow.h"

namespace provview {
namespace {

Relation SampleRelation(const CatalogPtr& catalog) {
  Relation r(Schema(catalog, {0, 1}));
  r.AddRow({0, 0});
  r.AddRow({0, 1});
  r.AddRow({1, 0});
  return r;
}

CatalogPtr TwoBoolCatalog() {
  auto catalog = std::make_shared<AttributeCatalog>();
  catalog->Add("a");
  catalog->Add("b");
  return catalog;
}

TEST(RelationOpsTest, SelectByValue) {
  auto catalog = TwoBoolCatalog();
  Relation r = SampleRelation(catalog);
  Relation sel = Select(r, 0, 0);
  EXPECT_EQ(sel.num_rows(), 2);
  for (const Tuple& row : sel.rows()) EXPECT_EQ(row[0], 0);
}

TEST(RelationOpsTest, SelectWherePredicate) {
  auto catalog = TwoBoolCatalog();
  Relation r = SampleRelation(catalog);
  Relation sel = SelectWhere(r, [](const Relation& rel, const Tuple& row) {
    return rel.At(row, 0) == rel.At(row, 1);
  });
  EXPECT_EQ(sel.num_rows(), 1);
  EXPECT_EQ(sel.rows()[0], (Tuple{0, 0}));
}

TEST(RelationOpsTest, UnionDeduplicates) {
  auto catalog = TwoBoolCatalog();
  Relation r = SampleRelation(catalog);
  Relation s(r.schema());
  s.AddRow({1, 1});
  s.AddRow({0, 0});  // duplicate with r
  Relation u = Union(r, s);
  EXPECT_EQ(u.num_rows(), 4);
}

TEST(RelationOpsTest, IntersectAndMinus) {
  auto catalog = TwoBoolCatalog();
  Relation r = SampleRelation(catalog);
  Relation s(r.schema());
  s.AddRow({0, 1});
  s.AddRow({1, 1});
  Relation i = Intersect(r, s);
  EXPECT_EQ(i.num_rows(), 1);
  EXPECT_TRUE(i.ContainsRow({0, 1}));
  Relation m = Minus(r, s);
  EXPECT_EQ(m.num_rows(), 2);
  EXPECT_FALSE(m.ContainsRow({0, 1}));
  // r \ r = ∅ ; r ∩ r = r.
  EXPECT_EQ(Minus(r, r).num_rows(), 0);
  EXPECT_TRUE(Intersect(r, r).EqualsAsSet(r));
}

TEST(RelationOpsTest, GroupCount) {
  auto catalog = TwoBoolCatalog();
  Relation r = SampleRelation(catalog);
  auto counts = GroupCount(r, {0});
  EXPECT_EQ(counts[{0}], 2);
  EXPECT_EQ(counts[{1}], 1);
}

TEST(RelationOpsTest, GroupCountDistinctMatchesAlgorithm2) {
  // Algorithm-2 as SQL (§A.4): for module m1 with V = {a1, a3, a5}, group
  // the view by the visible input a1 and count distinct visible outputs
  // (a3, a5). Each group must show Γ / |hidden-output extensions| = 4/2 = 2
  // distinct values.
  Fig1Workflow fig = MakeFig1Workflow();
  const Module& m1 = fig.workflow->module(fig.m1_index);
  Relation rel = m1.FullRelation();
  auto counts = GroupCountDistinct(rel, {fig.a1}, {fig.a3, fig.a5});
  ASSERT_EQ(counts.size(), 2u);
  for (const auto& [key, count] : counts) {
    (void)key;
    EXPECT_EQ(count, 2);
  }
  // And indeed the checker reports Γ = 2 × 2 hidden-output extensions = 4.
  Bitset64 visible = Bitset64::Of(7, {fig.a1, fig.a3, fig.a5});
  EXPECT_EQ(MaxStandaloneGamma(rel, m1.inputs(), m1.outputs(), visible), 4);
}

TEST(RelationOpsTest, ProvenanceQueryScenario) {
  // "All executions where the final output a6 is 1" over the Figure-1
  // provenance relation — the style of query users run on views.
  Fig1Workflow fig = MakeFig1Workflow();
  Relation prov = fig.workflow->ProvenanceRelation();
  Relation hits = Select(prov, fig.a6, 1);
  EXPECT_EQ(hits.num_rows(), 2);  // rows (0,0) and (1,1) per Figure 1b
  for (const Tuple& row : hits.rows()) {
    EXPECT_EQ(hits.At(row, fig.a1), hits.At(row, fig.a2));
  }
}

}  // namespace
}  // namespace provview
