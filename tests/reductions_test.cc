#include <gtest/gtest.h>

#include <cmath>

#include "reductions/to_secure_view.h"
#include "secureview/feasibility.h"
#include "secureview/solvers.h"

namespace provview {
namespace {

// ---------------------------------------------------------------------
// Set cover sources.
// ---------------------------------------------------------------------
TEST(SetCoverTest, GreedyAndExactOnKnownInstance) {
  SetCoverInstance sc;
  sc.universe_size = 4;
  sc.sets = {{0, 1}, {2}, {3}, {1, 2, 3}};
  SetCoverResult exact = SolveSetCoverExact(sc);
  ASSERT_TRUE(exact.status.ok());
  EXPECT_EQ(exact.cost, 2);  // {0,1} and {1,2,3}
  SetCoverResult greedy = SolveSetCoverGreedy(sc);
  ASSERT_TRUE(greedy.status.ok());
  EXPECT_GE(greedy.cost, 2);
}

TEST(SetCoverTest, UncoverableReported) {
  SetCoverInstance sc;
  sc.universe_size = 3;
  sc.sets = {{0}, {1}};
  EXPECT_FALSE(sc.IsCoverable());
  EXPECT_EQ(SolveSetCoverGreedy(sc).status.code(), StatusCode::kInfeasible);
  EXPECT_EQ(SolveSetCoverExact(sc).status.code(), StatusCode::kInfeasible);
}

TEST(SetCoverTest, RandomInstancesAreCoverable) {
  Rng rng(2);
  for (int t = 0; t < 10; ++t) {
    SetCoverInstance sc = RandomSetCover(12, 6, 5, &rng);
    EXPECT_TRUE(sc.IsCoverable());
    SetCoverResult greedy = SolveSetCoverGreedy(sc);
    SetCoverResult exact = SolveSetCoverExact(sc);
    ASSERT_TRUE(greedy.status.ok());
    ASSERT_TRUE(exact.status.ok());
    EXPECT_GE(greedy.cost, exact.cost);
    // Greedy is H_n-approximate; H_12 < 3.2.
    EXPECT_LE(greedy.cost, 3.2 * exact.cost + 1e-9);
  }
}

// ---------------------------------------------------------------------
// Vertex cover sources.
// ---------------------------------------------------------------------
TEST(VertexCoverTest, CubicGraphIsThreeRegular) {
  Rng rng(5);
  Graph g = RandomCubicGraph(10, &rng);
  EXPECT_EQ(g.num_vertices, 10);
  EXPECT_EQ(g.num_edges(), 15);
  for (int d : g.Degrees()) EXPECT_EQ(d, 3);
}

TEST(VertexCoverTest, ExactAndGreedyOnTriangle) {
  Graph g;
  g.num_vertices = 3;
  g.edges = {{0, 1}, {1, 2}, {0, 2}};
  VertexCoverResult exact = SolveVertexCoverExact(g);
  ASSERT_TRUE(exact.status.ok());
  EXPECT_EQ(exact.cost, 2);
  Rng rng(1);
  VertexCoverResult greedy = SolveVertexCoverGreedy(g, &rng);
  EXPECT_TRUE(IsVertexCover(g, greedy.cover));
  EXPECT_LE(greedy.cost, 2 * exact.cost);
}

TEST(VertexCoverTest, RandomCubicCoversValid) {
  Rng rng(9);
  Graph g = RandomCubicGraph(12, &rng);
  VertexCoverResult exact = SolveVertexCoverExact(g);
  ASSERT_TRUE(exact.status.ok());
  EXPECT_TRUE(IsVertexCover(g, exact.cover));
  // Cubic graph with 18 edges needs at least 18/3 = 6 vertices.
  EXPECT_GE(exact.cost, 6);
}

// ---------------------------------------------------------------------
// Label cover sources.
// ---------------------------------------------------------------------
TEST(LabelCoverTest, PlantedSolutionBoundsOptimum) {
  Rng rng(3);
  LabelCoverInstance lc = RandomLabelCover(3, 3, 3, 5, 2, &rng);
  LabelCoverResult exact = SolveLabelCoverExact(lc);
  ASSERT_TRUE(exact.status.ok());
  EXPECT_TRUE(IsLabelCover(lc, exact.assignment));
  // The planted labeling uses at most one label per vertex.
  EXPECT_LE(exact.cost, lc.num_left + lc.num_right);
  EXPECT_GE(exact.cost, 1);
}

TEST(LabelCoverTest, IsLabelCoverRejectsBadAssignment) {
  Rng rng(4);
  LabelCoverInstance lc = RandomLabelCover(2, 2, 2, 3, 0, &rng);
  std::vector<std::vector<int>> empty_assignment(
      static_cast<size_t>(lc.num_left + lc.num_right));
  EXPECT_FALSE(IsLabelCover(lc, empty_assignment));
}

// ---------------------------------------------------------------------
// Reduction correctness: OPT equalities of the appendix lemmas.
// ---------------------------------------------------------------------
class SetCoverReductionTest : public ::testing::TestWithParam<int> {};

TEST_P(SetCoverReductionTest, CardinalityReductionPreservesOptimum) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 11 + 2);
  SetCoverInstance sc = RandomSetCover(8, 5, 4, &rng);
  SetCoverCardReduction red = ReduceSetCoverToCardinality(sc);
  EXPECT_EQ(red.instance.MaxListLength(), 1);
  SetCoverResult sc_opt = SolveSetCoverExact(sc);
  SvResult sv_opt = SolveExact(red.instance);
  ASSERT_TRUE(sc_opt.status.ok());
  ASSERT_TRUE(sv_opt.status.ok());
  EXPECT_NEAR(sv_opt.cost, static_cast<double>(sc_opt.cost), 1e-6);
  // Mapping back: hidden a_i attributes form a cover.
  std::vector<bool> covered(static_cast<size_t>(sc.universe_size), false);
  for (int i = 0; i < sc.num_sets(); ++i) {
    if (sv_opt.solution.hidden.Test(red.a_attr[static_cast<size_t>(i)])) {
      for (int e : sc.sets[static_cast<size_t>(i)]) {
        covered[static_cast<size_t>(e)] = true;
      }
    }
  }
  for (bool c : covered) EXPECT_TRUE(c);
}

TEST_P(SetCoverReductionTest, GeneralReductionPreservesOptimum) {
  // Theorem 9 (C.2): cost comes entirely from privatizations.
  Rng rng(static_cast<uint64_t>(GetParam()) * 13 + 7);
  SetCoverInstance sc = RandomSetCover(7, 5, 3, &rng);
  SetCoverGeneralReduction red = ReduceSetCoverToGeneral(sc);
  SetCoverResult sc_opt = SolveSetCoverExact(sc);
  SvResult sv_opt = SolveExact(red.instance);
  ASSERT_TRUE(sc_opt.status.ok());
  ASSERT_TRUE(sv_opt.status.ok());
  EXPECT_NEAR(sv_opt.cost, static_cast<double>(sc_opt.cost), 1e-6);
  EXPECT_NEAR(sv_opt.solution.AttrCost(red.instance), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetCoverReductionTest, ::testing::Range(0, 5));

class VertexCoverReductionTest : public ::testing::TestWithParam<int> {};

TEST_P(VertexCoverReductionTest, OptimumIsEdgesPlusCover) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 19 + 1);
  Graph g = RandomCubicGraph(8, &rng);
  VertexCoverCardReduction red = ReduceVertexCoverToCardinality(g);
  VertexCoverResult vc = SolveVertexCoverExact(g);
  SvResult sv = SolveExact(red.instance);
  ASSERT_TRUE(vc.status.ok());
  ASSERT_TRUE(sv.status.ok());
  EXPECT_NEAR(sv.cost, static_cast<double>(g.num_edges() + vc.cost), 1e-6);
  // The hidden g_v attributes form a vertex cover.
  std::vector<int> cover;
  for (int v = 0; v < g.num_vertices; ++v) {
    if (sv.solution.hidden.Test(red.gv_attr[static_cast<size_t>(v)])) {
      cover.push_back(v);
    }
  }
  EXPECT_TRUE(IsVertexCover(g, cover));
}

INSTANTIATE_TEST_SUITE_P(Seeds, VertexCoverReductionTest,
                         ::testing::Range(0, 4));

class LabelCoverReductionTest : public ::testing::TestWithParam<int> {};

TEST_P(LabelCoverReductionTest, SetReductionPreservesOptimum) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 23 + 9);
  LabelCoverInstance lc = RandomLabelCover(2, 2, 3, 4, 1, &rng);
  LabelCoverSetReduction red = ReduceLabelCoverToSet(lc);
  LabelCoverResult lc_opt = SolveLabelCoverExact(lc);
  SvResult sv_opt = SolveExact(red.instance);
  ASSERT_TRUE(lc_opt.status.ok());
  ASSERT_TRUE(sv_opt.status.ok());
  EXPECT_NEAR(sv_opt.cost, static_cast<double>(lc_opt.cost), 1e-6);
  // Decode: hidden b_{v,ℓ} attributes form a valid labeling.
  std::vector<std::vector<int>> assignment(
      static_cast<size_t>(lc.num_left + lc.num_right));
  for (int v = 0; v < lc.num_left + lc.num_right; ++v) {
    for (int l = 0; l < lc.num_labels; ++l) {
      if (sv_opt.solution.hidden.Test(
              red.label_attr[static_cast<size_t>(v)][static_cast<size_t>(l)])) {
        assignment[static_cast<size_t>(v)].push_back(l);
      }
    }
  }
  EXPECT_TRUE(IsLabelCover(lc, assignment));
}

TEST_P(LabelCoverReductionTest, GeneralReductionPreservesOptimum) {
  // Theorem 10 (C.4): privatization cost equals the label-cover optimum.
  Rng rng(static_cast<uint64_t>(GetParam()) * 29 + 3);
  LabelCoverInstance lc = RandomLabelCover(2, 2, 2, 3, 1, &rng);
  LabelCoverGeneralReduction red = ReduceLabelCoverToGeneral(lc);
  LabelCoverResult lc_opt = SolveLabelCoverExact(lc);
  SvResult sv_opt = SolveExact(red.instance);
  ASSERT_TRUE(lc_opt.status.ok());
  ASSERT_TRUE(sv_opt.status.ok());
  EXPECT_NEAR(sv_opt.cost, static_cast<double>(lc_opt.cost), 1e-6);
  EXPECT_NEAR(sv_opt.solution.AttrCost(red.instance), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelCoverReductionTest,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace provview
