#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "lp/branch_and_bound.h"

namespace provview {
namespace {

TEST(BnbTest, PureLpWhenNoIntegerVars) {
  LinearProgram lp;
  int x = lp.AddVariable(0, LinearProgram::kInf, 1.0);
  lp.AddConstraint({{x, 2.0}}, ConstraintSense::kGe, 3.0);
  BnbResult r = SolveIlp(lp, {});
  ASSERT_TRUE(r.status.ok());
  EXPECT_NEAR(r.objective, 1.5, 1e-7);
}

TEST(BnbTest, RoundsUpWhenIntegral) {
  // min x s.t. 2x >= 3, x integer → x = 2.
  LinearProgram lp;
  int x = lp.AddVariable(0, LinearProgram::kInf, 1.0);
  lp.AddConstraint({{x, 2.0}}, ConstraintSense::kGe, 3.0);
  BnbResult r = SolveIlp(lp, {x});
  ASSERT_TRUE(r.status.ok());
  EXPECT_NEAR(r.objective, 2.0, 1e-7);
}

TEST(BnbTest, BinaryKnapsackCover) {
  // min Σ c_i x_i with x binary, coverage constraint: classic weighted
  // cover with known optimum. Items cover {0,1,2}; costs 3 (covers all),
  // 1 (covers 0,1), 1.5 (covers 2).
  LinearProgram lp;
  int a = lp.AddUnitVariable(3.0);
  int b = lp.AddUnitVariable(1.0);
  int c = lp.AddUnitVariable(1.5);
  lp.AddConstraint({{a, 1.0}, {b, 1.0}}, ConstraintSense::kGe, 1.0);  // elem 0
  lp.AddConstraint({{a, 1.0}, {b, 1.0}}, ConstraintSense::kGe, 1.0);  // elem 1
  lp.AddConstraint({{a, 1.0}, {c, 1.0}}, ConstraintSense::kGe, 1.0);  // elem 2
  BnbResult r = SolveIlp(lp, {a, b, c});
  ASSERT_TRUE(r.status.ok());
  EXPECT_NEAR(r.objective, 2.5, 1e-7);  // pick b and c
  EXPECT_NEAR(r.x[static_cast<size_t>(b)], 1.0, 1e-7);
  EXPECT_NEAR(r.x[static_cast<size_t>(c)], 1.0, 1e-7);
}

TEST(BnbTest, FractionalLpIntegralGapExample) {
  // Odd cycle vertex cover: LP relaxation gives 1.5, ILP gives 2.
  LinearProgram lp;
  std::vector<int> v;
  for (int i = 0; i < 3; ++i) v.push_back(lp.AddUnitVariable(1.0));
  lp.AddConstraint({{v[0], 1.0}, {v[1], 1.0}}, ConstraintSense::kGe, 1.0);
  lp.AddConstraint({{v[1], 1.0}, {v[2], 1.0}}, ConstraintSense::kGe, 1.0);
  lp.AddConstraint({{v[2], 1.0}, {v[0], 1.0}}, ConstraintSense::kGe, 1.0);
  LpSolution relax = SolveLp(lp);
  ASSERT_TRUE(relax.status.ok());
  EXPECT_NEAR(relax.objective, 1.5, 1e-7);
  BnbResult r = SolveIlp(lp, v);
  ASSERT_TRUE(r.status.ok());
  EXPECT_NEAR(r.objective, 2.0, 1e-7);
}

TEST(BnbTest, InfeasibleIlp) {
  LinearProgram lp;
  int x = lp.AddUnitVariable(1.0);
  lp.AddConstraint({{x, 1.0}}, ConstraintSense::kGe, 2.0);  // x <= 1 < 2
  BnbResult r = SolveIlp(lp, {x});
  EXPECT_EQ(r.status.code(), StatusCode::kInfeasible);
}

TEST(BnbTest, NodeBudgetReportsTimeout) {
  // A moderately hard parity-flavored instance with a 1-node budget.
  LinearProgram lp;
  std::vector<int> vars;
  for (int i = 0; i < 6; ++i) vars.push_back(lp.AddUnitVariable(1.0));
  for (int i = 0; i < 6; ++i) {
    lp.AddConstraint({{vars[static_cast<size_t>(i)], 1.0},
                      {vars[static_cast<size_t>((i + 1) % 6)], 1.0}},
                     ConstraintSense::kGe, 1.0);
  }
  BnbOptions opts;
  opts.max_nodes = 1;
  BnbResult r = SolveIlp(lp, vars, opts);
  EXPECT_TRUE(r.status.code() == StatusCode::kTimeout || r.status.ok());
}

// Property: on random binary covering ILPs, branch-and-bound matches
// exhaustive enumeration.
class BnbRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BnbRandomTest, MatchesExhaustiveOptimum) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 5 + 1);
  const int n = 8;
  std::vector<double> cost(n);
  for (auto& c : cost) c = 1.0 + rng.NextDouble() * 9.0;
  const int m = 6;
  std::vector<std::vector<int>> rows(m);
  for (auto& row : rows) {
    int size = 2 + static_cast<int>(rng.NextBelow(3));
    row = rng.SampleWithoutReplacement(n, size);
  }
  LinearProgram lp;
  std::vector<int> vars;
  for (int i = 0; i < n; ++i) {
    vars.push_back(lp.AddUnitVariable(cost[static_cast<size_t>(i)]));
  }
  for (const auto& row : rows) {
    std::vector<std::pair<int, double>> terms;
    for (int i : row) terms.emplace_back(vars[static_cast<size_t>(i)], 1.0);
    lp.AddConstraint(terms, ConstraintSense::kGe, 1.0);
  }
  BnbResult r = SolveIlp(lp, vars);
  ASSERT_TRUE(r.status.ok());

  double best = 1e18;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    bool ok = true;
    for (const auto& row : rows) {
      bool covered = false;
      for (int i : row) {
        if ((mask >> i) & 1u) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    double total = 0;
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) total += cost[static_cast<size_t>(i)];
    }
    best = std::min(best, total);
  }
  EXPECT_NEAR(r.objective, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbRandomTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace provview
