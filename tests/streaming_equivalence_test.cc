// Randomized equivalence suite for the streaming row paths: on instances
// small enough to also materialize, the streaming engines (supplier-fed
// MaxStandaloneGamma, streaming SafetyMemo, supplier-fed standalone world
// enumeration, streamed workflow-table builds) must return verdicts,
// world counts and aggregates identical to the materialized paths.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "generators/random_workflow.h"
#include "module/module_library.h"
#include "privacy/possible_worlds.h"
#include "privacy/safe_subset_search.h"
#include "privacy/standalone_privacy.h"
#include "workflow/fig1_workflow.h"

namespace provview {
namespace {

struct RandomModule {
  CatalogPtr catalog;
  ModulePtr module;
  Bitset64 visible;
};

RandomModule MakeRandomModule(int ki, int ko, int max_dom, uint64_t seed) {
  RandomModule inst;
  inst.catalog = std::make_shared<AttributeCatalog>();
  Rng rng(seed);
  std::vector<AttrId> in, out;
  for (int i = 0; i < ki; ++i) {
    in.push_back(inst.catalog->Add("i" + std::to_string(i),
                                   static_cast<int>(rng.NextInt(2, max_dom))));
  }
  for (int o = 0; o < ko; ++o) {
    out.push_back(inst.catalog->Add("o" + std::to_string(o),
                                    static_cast<int>(rng.NextInt(2, max_dom))));
  }
  inst.module = MakeRandomFunction("m", inst.catalog, in, out, &rng);
  inst.visible = Bitset64(inst.catalog->size());
  for (int a = 0; a < inst.catalog->size(); ++a) {
    if (rng.NextBernoulli(0.5)) inst.visible.Set(a);
  }
  return inst;
}

TEST(StreamingEquivalenceTest, MaxGammaMatchesMaterializedOnRandomModules) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    RandomModule inst = MakeRandomModule(3, 2, 3, seed);
    const Module& m = *inst.module;
    // Independent reference: the sort-based Algorithm 2 over the
    // materialized relation.
    const int64_t expected = MaxStandaloneGamma(
        m.FullRelation(), m.inputs(), m.outputs(), inst.visible);
    // Streaming scan over the materialized rows...
    Relation rel = m.FullRelation();
    MaterializedRowSupplier mat_rows(rel);
    EXPECT_EQ(MaxStandaloneGamma(&mat_rows, m.inputs(), m.outputs(),
                                 inst.visible),
              expected)
        << "seed " << seed;
    // ...and over rows re-derived from the module's function.
    ModuleRowSupplier fn_rows(m);
    EXPECT_EQ(
        MaxStandaloneGamma(&fn_rows, m.inputs(), m.outputs(), inst.visible),
        expected)
        << "seed " << seed;
    // The thresholded module overload, forced down each path.
    EXPECT_EQ(MaxStandaloneGamma(m, inst.visible,
                                 /*materialize_threshold=*/m.DomainSize()),
              expected)
        << "seed " << seed;
    EXPECT_EQ(MaxStandaloneGamma(m, inst.visible,
                                 /*materialize_threshold=*/0),
              expected)
        << "seed " << seed;
  }
}

TEST(StreamingEquivalenceTest, SubsetSearchMatchesAcrossPaths) {
  for (uint64_t seed = 50; seed < 62; ++seed) {
    RandomModule inst = MakeRandomModule(2, 2, 3, seed);
    const Module& m = *inst.module;
    for (int64_t gamma : {2, 4}) {
      SafeSearchStats mat_stats, stream_stats;
      std::vector<Bitset64> mat = MinimalSafeHiddenSets(
          m, gamma, &mat_stats, /*materialize_threshold=*/m.DomainSize());
      std::vector<Bitset64> stream = MinimalSafeHiddenSets(
          m, gamma, &stream_stats, /*materialize_threshold=*/0);
      EXPECT_EQ(mat, stream) << "seed " << seed << " gamma " << gamma;
      EXPECT_EQ(MinimalSafeCardinalityPairs(m, gamma, m.DomainSize()),
                MinimalSafeCardinalityPairs(m, gamma, 0))
          << "seed " << seed << " gamma " << gamma;
    }
  }
}

TEST(StreamingEquivalenceTest, SupplierWorldsMatchNaiveEnumeration) {
  for (uint64_t seed = 100; seed < 120; ++seed) {
    RandomModule inst = MakeRandomModule(2, 2, 2, seed);
    const Module& m = *inst.module;
    StandaloneWorlds naive = EnumerateStandaloneWorldsNaive(
        m.FullRelation(), m.inputs(), m.outputs(), inst.visible);
    EnumerationOptions opts;
    ModuleRowSupplier fn_rows(m);
    StandaloneWorlds streamed = EnumerateStandaloneWorlds(
        &fn_rows, m.inputs(), m.outputs(), inst.visible, opts);
    EXPECT_EQ(naive.num_worlds, streamed.num_worlds) << "seed " << seed;
    EXPECT_EQ(naive.out_sets, streamed.out_sets) << "seed " << seed;
  }
}

TEST(StreamingEquivalenceTest, StreamedTablesMatchMaterializedAggregates) {
  for (uint64_t seed = 200; seed < 206; ++seed) {
    Rng rng(seed);
    RandomWorkflowOptions options;
    options.num_modules = 3;
    GeneratedWorkflow rw = MakeRandomWorkflow(options, &rng);
    std::shared_ptr<const WorkflowTables> mat =
        BuildWorkflowTables(*rw.workflow);
    ASSERT_TRUE(mat->log_materialized);

    WorkflowTablesOptions stream_opts;
    stream_opts.materialize_threshold = 0;  // force the aggregate-only scan
    stream_opts.chunk_executions = 3;       // exercise chunk boundaries
    std::shared_ptr<const WorkflowTables> streamed =
        BuildWorkflowTables(*rw.workflow, stream_opts);
    EXPECT_FALSE(streamed->log_materialized);
    EXPECT_EQ(streamed->num_execs, mat->num_execs);
    EXPECT_EQ(streamed->orig_input_codes, mat->orig_input_codes)
        << "seed " << seed;
    EXPECT_TRUE(streamed->orig_rows.empty());

    // The sharded scan merges to the same aggregates.
    WorkflowTablesOptions parallel_opts = stream_opts;
    parallel_opts.num_threads = 4;
    parallel_opts.chunk_executions = 1;
    std::shared_ptr<const WorkflowTables> parallel =
        BuildWorkflowTables(*rw.workflow, parallel_opts);
    EXPECT_EQ(parallel->orig_input_codes, mat->orig_input_codes)
        << "seed " << seed;

    // A materialized build through the chunked scan is byte-identical to
    // the default build.
    WorkflowTablesOptions chunked_mat;
    chunked_mat.chunk_executions = 2;
    chunked_mat.num_threads = 2;
    std::shared_ptr<const WorkflowTables> remat =
        BuildWorkflowTables(*rw.workflow, chunked_mat);
    EXPECT_TRUE(remat->log_materialized);
    EXPECT_EQ(remat->orig_rows, mat->orig_rows) << "seed " << seed;
    EXPECT_EQ(remat->orig_in_code, mat->orig_in_code) << "seed " << seed;
    EXPECT_EQ(remat->init_values, mat->init_values) << "seed " << seed;
  }
}

TEST(StreamingEquivalenceTest, WorldEnumerationRefusesStreamedTables) {
  Fig1Workflow fig = MakeFig1Workflow();
  WorkflowTablesOptions opts;
  opts.materialize_threshold = 0;
  std::shared_ptr<const WorkflowTables> streamed =
      BuildWorkflowTables(*fig.workflow, opts);
  WorkflowEnumerationOptions wopts;
  EXPECT_DEATH(EnumerateWorkflowWorlds(*streamed,
                                       Bitset64::All(fig.catalog->size()), {},
                                       wopts),
               "materialized execution log");
}

}  // namespace
}  // namespace provview
