// Per-module privacy targets Γ_i (§2.4 remark: "results and proofs remain
// unchanged when different modules have different privacy requirements")
// and non-boolean attribute domains, exercised together through the full
// pipeline: requirement derivation → optimization → certification.
#include <gtest/gtest.h>

#include "module/module_library.h"
#include "privacy/possible_worlds.h"
#include "privacy/safe_subset_search.h"
#include "privacy/standalone_privacy.h"
#include "privacy/workflow_privacy.h"
#include "secureview/feasibility.h"
#include "secureview/from_workflow.h"
#include "secureview/solvers.h"
#include "workflow/fig1_workflow.h"

namespace provview {
namespace {

TEST(HeterogeneousGammaTest, PerModuleTargetsRespected) {
  // m1 gets Γ = 4, m2/m3 get Γ = 2 (their single boolean output caps them
  // there).
  Fig1Workflow fig = MakeFig1Workflow();
  std::vector<int64_t> gammas = {4, 2, 2};
  SecureViewInstance inst =
      InstanceFromWorkflow(*fig.workflow, gammas, ConstraintKind::kSet);
  SvResult exact = SolveExact(inst);
  ASSERT_TRUE(exact.status.ok());
  EXPECT_TRUE(IsFeasible(inst, exact.solution));
  std::vector<int64_t> achieved =
      PerModuleStandaloneGamma(*fig.workflow, exact.solution.hidden);
  EXPECT_GE(achieved[0], 4);
  EXPECT_GE(achieved[1], 2);
  EXPECT_GE(achieved[2], 2);
}

TEST(HeterogeneousGammaTest, UniformOverloadEqualsPerModuleVector) {
  Fig1Workflow fig = MakeFig1Workflow();
  SecureViewInstance a =
      InstanceFromWorkflow(*fig.workflow, 2, ConstraintKind::kSet);
  SecureViewInstance b = InstanceFromWorkflow(
      *fig.workflow, std::vector<int64_t>{2, 2, 2}, ConstraintKind::kSet);
  ASSERT_EQ(a.num_modules(), b.num_modules());
  for (int i = 0; i < a.num_modules(); ++i) {
    EXPECT_EQ(a.modules[static_cast<size_t>(i)].set_options.size(),
              b.modules[static_cast<size_t>(i)].set_options.size());
  }
  EXPECT_NEAR(SolveExact(a).cost, SolveExact(b).cost, 1e-9);
}

TEST(HeterogeneousGammaTest, HigherTargetNeverCheaper) {
  Fig1Workflow fig = MakeFig1Workflow();
  SecureViewInstance low = InstanceFromWorkflow(
      *fig.workflow, std::vector<int64_t>{2, 2, 2}, ConstraintKind::kSet);
  SecureViewInstance high = InstanceFromWorkflow(
      *fig.workflow, std::vector<int64_t>{4, 2, 2}, ConstraintKind::kSet);
  EXPECT_LE(SolveExact(low).cost, SolveExact(high).cost + 1e-9);
}

// ---------------------------------------------------------------------
// Non-boolean domains through the privacy stack.
// ---------------------------------------------------------------------
TEST(NonBooleanDomainTest, CheckerHandlesTernaryDomains) {
  auto catalog = std::make_shared<AttributeCatalog>();
  AttrId x = catalog->Add("x", 3);
  AttrId y = catalog->Add("y", 3);
  // y = (x + 1) mod 3: a ternary bijection.
  ModulePtr m = MakeShiftBijection("inc3", catalog, {x}, {y}, 1);
  // Hiding the output: Γ = 3 (full range).
  Bitset64 hide_out = Bitset64::Of(2, {static_cast<int>(y)});
  EXPECT_EQ(MaxStandaloneGamma(*m, hide_out.Complement()), 3);
  // Hiding the input: also Γ = 3 for a bijection.
  Bitset64 hide_in = Bitset64::Of(2, {static_cast<int>(x)});
  EXPECT_EQ(MaxStandaloneGamma(*m, hide_in.Complement()), 3);
  // Nothing hidden: Γ = 1.
  EXPECT_EQ(MaxStandaloneGamma(*m, Bitset64::All(2)), 1);
}

TEST(NonBooleanDomainTest, CountingMatchesBruteForceOnMixedDomains) {
  // Module with a ternary input, a binary input, and a ternary output.
  auto catalog = std::make_shared<AttributeCatalog>();
  AttrId a = catalog->Add("a", 3);
  AttrId b = catalog->Add("b", 2);
  AttrId c = catalog->Add("c", 3);
  Rng rng(15);
  ModulePtr m = MakeRandomFunction("f", catalog, {a, b}, {c}, &rng);
  Relation rel = m->FullRelation();
  for (uint64_t mask = 0; mask < 8; ++mask) {
    Bitset64 visible(3);
    for (int i = 0; i < 3; ++i) {
      if ((mask >> i) & 1u) visible.Set(i);
    }
    StandaloneWorlds worlds =
        EnumerateStandaloneWorlds(rel, m->inputs(), m->outputs(), visible);
    EXPECT_EQ(worlds.MinOutSize(),
              MaxStandaloneGamma(rel, m->inputs(), m->outputs(), visible))
        << visible.ToString();
  }
}

TEST(NonBooleanDomainTest, SafeSearchOnTernaryModule) {
  auto catalog = std::make_shared<AttributeCatalog>();
  AttrId a = catalog->Add("a", 3, 2.0);
  AttrId b = catalog->Add("b", 3, 1.0);
  Rng rng(77);
  ModulePtr m = MakeRandomBijection("tern", catalog, {a}, {b}, &rng);
  // Γ = 3 requires hiding a or b; min cost picks b.
  MinCostSafeResult r = MinCostSafeHiddenSet(*m, 3);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.hidden, Bitset64::Of(2, {static_cast<int>(b)}));
  EXPECT_DOUBLE_EQ(r.cost, 1.0);
  // Γ = 4 exceeds the range: impossible.
  EXPECT_FALSE(MinCostSafeHiddenSet(*m, 4).found);
}

TEST(NonBooleanDomainTest, WorkflowWithMixedDomainsEndToEnd) {
  auto catalog = std::make_shared<AttributeCatalog>();
  AttrId s = catalog->Add("s", 3, 1.0);
  AttrId t = catalog->Add("t", 3, 2.0);
  AttrId u = catalog->Add("u", 3, 3.0);
  Workflow w(catalog);
  Rng rng(3);
  w.AddModule(MakeRandomBijection("first", catalog, {s}, {t}, &rng));
  w.AddModule(MakeShiftBijection("second", catalog, {t}, {u}, 2));
  ASSERT_TRUE(w.Validate().ok());
  SecureViewInstance inst =
      InstanceFromWorkflow(w, 3, ConstraintKind::kSet);
  SvResult exact = SolveExact(inst);
  ASSERT_TRUE(exact.status.ok());
  EXPECT_TRUE(VerifySolutionSemantics(w, exact.solution, 3));
  // Ground truth on this tiny ternary chain.
  EXPECT_GE(GroundTruthWorkflowGamma(w, exact.solution.hidden, {}), 3);
}

}  // namespace
}  // namespace provview
