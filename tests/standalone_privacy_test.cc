#include <gtest/gtest.h>

#include <algorithm>

#include "common/combinatorics.h"
#include "module/module_library.h"
#include "privacy/standalone_privacy.h"
#include "workflow/fig1_workflow.h"

namespace provview {
namespace {

// Example 3 of the paper, on module m1 of Figure 1.
class Fig1M1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    fig_ = MakeFig1Workflow();
    rel_ = fig_.workflow->module(fig_.m1_index).FullRelation();
    inputs_ = {fig_.a1, fig_.a2};
    outputs_ = {fig_.a3, fig_.a4, fig_.a5};
  }
  Bitset64 Visible(const std::vector<int>& ids) {
    return Bitset64::Of(7, ids);
  }
  Fig1Workflow fig_;
  Relation rel_;
  std::vector<AttrId> inputs_, outputs_;
};

TEST_F(Fig1M1Test, VisibleA1A3A5IsSafeForGamma4) {
  // Example 3: V = {a1, a3, a5} is safe for m1 and Γ = 4.
  Bitset64 v = Visible({fig_.a1, fig_.a3, fig_.a5});
  EXPECT_TRUE(IsStandaloneSafe(rel_, inputs_, outputs_, v, 4));
  EXPECT_EQ(MaxStandaloneGamma(rel_, inputs_, outputs_, v), 4);
}

TEST_F(Fig1M1Test, OutSetForInput00MatchesPaper) {
  // Example 3: for x = (0,0), OUT = {(0,0,1),(0,1,1),(1,0,0),(1,1,0)}.
  Bitset64 v = Visible({fig_.a1, fig_.a3, fig_.a5});
  EXPECT_EQ(OutSetSize(rel_, inputs_, outputs_, v, {0, 0}), 4);
  std::vector<Tuple> out = OutSet(rel_, inputs_, outputs_, v, {0, 0});
  std::vector<Tuple> expected = {{0, 0, 1}, {0, 1, 1}, {1, 0, 0}, {1, 1, 0}};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(out, expected);
}

TEST_F(Fig1M1Test, HidingTwoOutputsIsSafeForGamma4) {
  // Example 3: hiding any two of {a3,a4,a5} ensures Γ = 4.
  for (const auto& hidden_pair :
       std::vector<std::vector<int>>{{fig_.a3, fig_.a4},
                                     {fig_.a3, fig_.a5},
                                     {fig_.a4, fig_.a5}}) {
    Bitset64 hidden = Bitset64::Of(7, hidden_pair);
    EXPECT_TRUE(IsStandaloneSafe(rel_, inputs_, outputs_, hidden.Complement(),
                                 4))
        << "hidden = " << hidden.ToString();
  }
}

TEST_F(Fig1M1Test, HidingOnlyInputsGivesGamma3) {
  // Example 3: V = {a3,a4,a5} (inputs hidden) is NOT safe for Γ = 4: every
  // input maps to one of only 3 visible outputs.
  Bitset64 v = Visible({fig_.a3, fig_.a4, fig_.a5});
  EXPECT_FALSE(IsStandaloneSafe(rel_, inputs_, outputs_, v, 4));
  EXPECT_EQ(MaxStandaloneGamma(rel_, inputs_, outputs_, v), 3);
  EXPECT_TRUE(IsStandaloneSafe(rel_, inputs_, outputs_, v, 3));
}

TEST_F(Fig1M1Test, EverythingVisibleGivesGamma1) {
  Bitset64 v = Bitset64::All(7);
  EXPECT_EQ(MaxStandaloneGamma(rel_, inputs_, outputs_, v), 1);
  EXPECT_TRUE(IsStandaloneSafe(rel_, inputs_, outputs_, v, 1));
  EXPECT_FALSE(IsStandaloneSafe(rel_, inputs_, outputs_, v, 2));
}

TEST_F(Fig1M1Test, EverythingHiddenGivesFullRange) {
  Bitset64 v(7);
  // All 2^3 = 8 outputs possible for every input.
  EXPECT_EQ(MaxStandaloneGamma(rel_, inputs_, outputs_, v), 8);
}

TEST_F(Fig1M1Test, ModuleOverloadMatchesRelationOverload) {
  const Module& m1 = fig_.workflow->module(fig_.m1_index);
  Bitset64 v = Visible({fig_.a1, fig_.a3, fig_.a5});
  EXPECT_EQ(MaxStandaloneGamma(m1, v),
            MaxStandaloneGamma(rel_, inputs_, outputs_, v));
  EXPECT_TRUE(IsStandaloneSafe(m1, v, 4));
}

TEST(StandalonePrivacyTest, OneOneModuleExample6) {
  // One-one function with k inputs / k outputs: hiding any k inputs or any
  // k outputs gives 2^k-privacy (Example 6).
  auto catalog = std::make_shared<AttributeCatalog>();
  for (int i = 0; i < 6; ++i) catalog->Add("a" + std::to_string(i));
  Rng rng(3);
  ModulePtr bij =
      MakeRandomBijection("bij", catalog, {0, 1, 2}, {3, 4, 5}, &rng);
  Relation rel = bij->FullRelation();
  // Hide all inputs.
  Bitset64 hide_in = Bitset64::Of(6, {0, 1, 2});
  EXPECT_EQ(MaxStandaloneGamma(rel, bij->inputs(), bij->outputs(),
                               hide_in.Complement()),
            8);
  // Hide all outputs.
  Bitset64 hide_out = Bitset64::Of(6, {3, 4, 5});
  EXPECT_EQ(MaxStandaloneGamma(rel, bij->inputs(), bij->outputs(),
                               hide_out.Complement()),
            8);
  // Hiding k-1 outputs only gives 2^{k-1}.
  Bitset64 hide_partial = Bitset64::Of(6, {3, 4});
  EXPECT_EQ(MaxStandaloneGamma(rel, bij->inputs(), bij->outputs(),
                               hide_partial.Complement()),
            4);
}

TEST(StandalonePrivacyTest, MajorityExample6) {
  // Majority on 2k boolean inputs: hiding k+1 inputs or the single output
  // guarantees 2-privacy (Example 6).
  auto catalog = std::make_shared<AttributeCatalog>();
  for (int i = 0; i < 5; ++i) catalog->Add("a" + std::to_string(i));
  ModulePtr maj = MakeMajority("maj", catalog, {0, 1, 2, 3}, 4);
  Relation rel = maj->FullRelation();
  // Hide the output: 2-private.
  Bitset64 hide_out = Bitset64::Of(5, {4});
  EXPECT_TRUE(IsStandaloneSafe(rel, maj->inputs(), maj->outputs(),
                               hide_out.Complement(), 2));
  // Hide k+1 = 3 inputs: safe for 2.
  Bitset64 hide_in = Bitset64::Of(5, {0, 1, 2});
  EXPECT_TRUE(IsStandaloneSafe(rel, maj->inputs(), maj->outputs(),
                               hide_in.Complement(), 2));
  // Hide only k = 2 inputs: the all-ones remainder pins the output.
  Bitset64 hide_few = Bitset64::Of(5, {0, 1});
  EXPECT_FALSE(IsStandaloneSafe(rel, maj->inputs(), maj->outputs(),
                                hide_few.Complement(), 2));
}

TEST(StandalonePrivacyTest, ConstantModuleNeedsOutputHiding) {
  auto catalog = std::make_shared<AttributeCatalog>();
  for (int i = 0; i < 3; ++i) catalog->Add("a" + std::to_string(i));
  ModulePtr c = MakeConstant("c", catalog, {0, 1}, {2}, {1});
  Relation rel = c->FullRelation();
  // Hiding inputs achieves nothing: output constant and visible.
  Bitset64 hide_in = Bitset64::Of(3, {0, 1});
  EXPECT_EQ(MaxStandaloneGamma(rel, c->inputs(), c->outputs(),
                               hide_in.Complement()),
            1);
  // Hiding the output gives the full binary range.
  Bitset64 hide_out = Bitset64::Of(3, {2});
  EXPECT_EQ(MaxStandaloneGamma(rel, c->inputs(), c->outputs(),
                               hide_out.Complement()),
            2);
}

TEST(StandalonePrivacyTest, EmptyRelationIsVacuouslySafe) {
  auto catalog = std::make_shared<AttributeCatalog>();
  catalog->Add("x");
  catalog->Add("y");
  Relation rel(Schema(catalog, {0, 1}));
  EXPECT_TRUE(IsStandaloneSafe(rel, {0}, {1}, Bitset64::All(2), 1000));
}

// Property: hiding more attributes never hurts (Proposition 1, standalone
// direction). Sweep over random modules and nested visible sets.
class MonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(MonotonicityTest, GammaMonotoneUnderHiding) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  auto catalog = std::make_shared<AttributeCatalog>();
  for (int i = 0; i < 5; ++i) catalog->Add("a" + std::to_string(i), 2);
  ModulePtr mod = MakeRandomFunction("f", catalog, {0, 1}, {2, 3, 4}, &rng);
  Relation rel = mod->FullRelation();
  ForEachSubset(5, [&](const Bitset64& visible) {
    int64_t gamma = MaxStandaloneGamma(rel, mod->inputs(), mod->outputs(),
                                       visible);
    // Dropping any single attribute from the visible set cannot decrease Γ.
    for (int a : visible.ToVector()) {
      Bitset64 smaller = visible;
      smaller.Reset(a);
      EXPECT_GE(MaxStandaloneGamma(rel, mod->inputs(), mod->outputs(),
                                   smaller),
                gamma)
          << "visible=" << visible.ToString() << " minus " << a;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RandomModules, MonotonicityTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace provview
