#include <gtest/gtest.h>

#include <set>

#include "generators/families.h"
#include "generators/random_workflow.h"
#include "generators/requirement_gen.h"
#include "secureview/feasibility.h"

namespace provview {
namespace {

class RandomWorkflowTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomWorkflowTest, GeneratesValidWorkflowWithinBounds) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 43 + 19);
  RandomWorkflowOptions opt;
  opt.num_modules = 8;
  opt.max_inputs = 3;
  opt.max_outputs = 2;
  opt.gamma_bound = 2;
  GeneratedWorkflow gen = MakeRandomWorkflow(opt, &rng);
  const Workflow& w = *gen.workflow;
  EXPECT_TRUE(w.validated());
  EXPECT_EQ(w.num_modules(), 8);
  EXPECT_LE(w.DataSharingDegree(), 2);
  for (int i = 0; i < w.num_modules(); ++i) {
    const Module& m = w.module(i);
    EXPECT_GE(m.num_inputs(), 1);
    EXPECT_LE(m.num_inputs(), 3);
    EXPECT_GE(m.num_outputs(), 1);
    EXPECT_LE(m.num_outputs(), 2);
  }
  // Executable end to end.
  Relation prov = w.ProvenanceRelation(1 << 20);
  EXPECT_GT(prov.num_rows(), 0);
}

TEST_P(RandomWorkflowTest, PublicFractionProducesPublics) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 2);
  RandomWorkflowOptions opt;
  opt.num_modules = 10;
  opt.public_fraction = 1.0;
  GeneratedWorkflow gen = MakeRandomWorkflow(opt, &rng);
  EXPECT_EQ(gen.workflow->PublicModuleIndices().size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkflowTest, ::testing::Range(0, 5));

TEST(RandomWorkflowTest, CostsWithinRange) {
  Rng rng(55);
  RandomWorkflowOptions opt;
  opt.min_cost = 2.0;
  opt.max_cost = 3.0;
  GeneratedWorkflow gen = MakeRandomWorkflow(opt, &rng);
  for (AttrId id = 0; id < gen.catalog->size(); ++id) {
    EXPECT_GE(gen.catalog->Cost(id), 2.0);
    EXPECT_LE(gen.catalog->Cost(id), 3.0);
  }
}

class RandomInstanceTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomInstanceTest, CardinalityListsAreNonRedundant) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 3 + 1);
  RandomInstanceOptions opt;
  opt.kind = ConstraintKind::kCardinality;
  opt.num_modules = 10;
  opt.max_list_length = 3;
  SecureViewInstance inst = MakeRandomInstance(opt, &rng);
  EXPECT_TRUE(inst.Validate().ok());
  EXPECT_LE(inst.DataSharingDegree(), opt.gamma_bound);
  for (int i : inst.PrivateModules()) {
    const auto& list = inst.modules[static_cast<size_t>(i)].card_options;
    ASSERT_FALSE(list.empty());
    for (size_t j = 1; j < list.size(); ++j) {
      // α increasing, β decreasing: no option dominates another.
      EXPECT_GT(list[j].alpha, list[j - 1].alpha);
      EXPECT_LT(list[j].beta, list[j - 1].beta);
    }
    for (const CardOption& o : list) {
      EXPECT_TRUE(o.alpha > 0 || o.beta > 0);
    }
  }
}

TEST_P(RandomInstanceTest, SetInstancesSolvable) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 13 + 5);
  RandomInstanceOptions opt;
  opt.kind = ConstraintKind::kSet;
  opt.num_modules = 8;
  SecureViewInstance inst = MakeRandomInstance(opt, &rng);
  EXPECT_TRUE(inst.Validate().ok());
  // Hiding everything is always feasible.
  SecureViewSolution all = CompleteSolution(inst, Bitset64::All(inst.num_attrs));
  EXPECT_TRUE(IsFeasible(inst, all));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstanceTest, ::testing::Range(0, 6));

TEST(FamiliesTest, Example5InstanceShape) {
  SecureViewInstance inst = MakeExample5Instance(5, 0.25);
  EXPECT_TRUE(inst.Validate().ok());
  EXPECT_EQ(inst.num_modules(), 7);   // m + 5 middles + m'
  EXPECT_EQ(inst.num_attrs, 8);       // a1, a2, b1..b5, c
  EXPECT_DOUBLE_EQ(inst.attr_cost[1], 1.25);
  EXPECT_EQ(inst.DataSharingDegree(), 5);  // a2 feeds all middles
  EXPECT_EQ(inst.MaxListLength(), 5);      // m' lists every b_i
}

TEST(FamiliesTest, Prop2ChainIsOneOne) {
  Prop2Chain chain = MakeProp2Chain(3);
  EXPECT_EQ(chain.workflow->num_modules(), 2);
  EXPECT_TRUE(chain.workflow->module(0).IsInjective());
  EXPECT_TRUE(chain.workflow->module(1).IsInjective());
  // The chain computes negation end to end.
  Tuple out = chain.workflow->Execute({1, 0, 1});
  // Attributes: x0..x2, y0..y2, z0..z2 — z = ¬x.
  EXPECT_EQ(out[6], 0);
  EXPECT_EQ(out[7], 1);
  EXPECT_EQ(out[8], 0);
}

TEST(FamiliesTest, Example7ChainsHaveExpectedVisibility) {
  Rng rng(21);
  Example7Chain c1 = MakeExample7Chain(2, &rng);
  EXPECT_TRUE(c1.workflow->module(c1.constant_index).is_public());
  EXPECT_FALSE(c1.workflow->module(c1.bijection_index).is_public());
  Example7OutputChain c2 = MakeExample7OutputChain(2, &rng);
  EXPECT_TRUE(c2.workflow->module(c2.invertible_index).is_public());
  EXPECT_TRUE(c2.workflow->module(c2.bijection_index).IsInjective());
}

}  // namespace
}  // namespace provview
