#include <gtest/gtest.h>

#include "common/combinatorics.h"
#include "generators/families.h"
#include "module/module_library.h"
#include "privacy/possible_worlds.h"
#include "privacy/standalone_privacy.h"
#include "workflow/fig1_workflow.h"

namespace provview {
namespace {

TEST(StandaloneWorldsTest, Fig1M1HasSixtyFourWorlds) {
  // Example 2: "Overall there are sixty four relations in Worlds(R1, V)"
  // for V = {a1, a3, a5}.
  Fig1Workflow fig = MakeFig1Workflow();
  const Module& m1 = fig.workflow->module(fig.m1_index);
  Relation rel = m1.FullRelation();
  Bitset64 v = Bitset64::Of(7, {fig.a1, fig.a3, fig.a5});
  StandaloneWorlds worlds =
      EnumerateStandaloneWorlds(rel, m1.inputs(), m1.outputs(), v);
  EXPECT_EQ(worlds.num_worlds, 64);
  EXPECT_EQ(worlds.MinOutSize(), 4);
}

TEST(StandaloneWorldsTest, Fig2SampleWorldsAreConsistent) {
  // The four relations R1^1..R1^4 of Figure 2 all project onto R_V; check
  // their (input → output) choices appear in the enumerated OUT sets.
  Fig1Workflow fig = MakeFig1Workflow();
  const Module& m1 = fig.workflow->module(fig.m1_index);
  Relation rel = m1.FullRelation();
  Bitset64 v = Bitset64::Of(7, {fig.a1, fig.a3, fig.a5});
  StandaloneWorlds worlds =
      EnumerateStandaloneWorlds(rel, m1.inputs(), m1.outputs(), v);
  // R1^1 (Figure 2a): (0,0)→(0,0,1), (0,1)→(1,0,0), (1,0)→(1,0,0),
  // (1,1)→(1,0,1).
  EXPECT_TRUE(worlds.out_sets.at({0, 0}).count({0, 0, 1}));
  EXPECT_TRUE(worlds.out_sets.at({0, 1}).count({1, 0, 0}));
  EXPECT_TRUE(worlds.out_sets.at({1, 0}).count({1, 0, 0}));
  EXPECT_TRUE(worlds.out_sets.at({1, 1}).count({1, 0, 1}));
  // R1^4 (Figure 2d): (0,0)→(1,1,0), (0,1)→(0,1,1).
  EXPECT_TRUE(worlds.out_sets.at({0, 0}).count({1, 1, 0}));
  EXPECT_TRUE(worlds.out_sets.at({0, 1}).count({0, 1, 1}));
}

TEST(StandaloneWorldsTest, FullyVisibleLeavesSingleWorld) {
  Fig1Workflow fig = MakeFig1Workflow();
  const Module& m1 = fig.workflow->module(fig.m1_index);
  Relation rel = m1.FullRelation();
  StandaloneWorlds worlds = EnumerateStandaloneWorlds(
      rel, m1.inputs(), m1.outputs(), Bitset64::All(7));
  EXPECT_EQ(worlds.num_worlds, 1);
  EXPECT_EQ(worlds.MinOutSize(), 1);
}

// Property (Lemma 2 + flip construction): the Algorithm-2 counting
// semantics agree EXACTLY with brute-force world enumeration — both the
// minimum OUT size and every individual OUT set.
class CountingVsBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(CountingVsBruteForceTest, OutSetsMatch) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  auto catalog = std::make_shared<AttributeCatalog>();
  for (int i = 0; i < 4; ++i) catalog->Add("a" + std::to_string(i), 2);
  ModulePtr mod = MakeRandomFunction("f", catalog, {0, 1}, {2, 3}, &rng);
  Relation rel = mod->FullRelation();

  ForEachSubset(4, [&](const Bitset64& visible) {
    StandaloneWorlds worlds = EnumerateStandaloneWorlds(
        rel, mod->inputs(), mod->outputs(), visible);
    EXPECT_EQ(worlds.MinOutSize(),
              MaxStandaloneGamma(rel, mod->inputs(), mod->outputs(), visible))
        << "visible=" << visible.ToString();
    for (const auto& [x, outs] : worlds.out_sets) {
      EXPECT_EQ(static_cast<int64_t>(outs.size()),
                OutSetSize(rel, mod->inputs(), mod->outputs(), visible, x));
      std::vector<Tuple> expected(outs.begin(), outs.end());
      EXPECT_EQ(OutSet(rel, mod->inputs(), mod->outputs(), visible, x),
                expected);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RandomModules, CountingVsBruteForceTest,
                         ::testing::Range(0, 8));

TEST(WorkflowWorldsTest, Prop2ChainWorldCounts) {
  // Proposition 2 (Appendix B.1), k = 2, Γ = 2: hiding one intermediate
  // bit gives |Worlds(R1,V)| = Γ^{2^k} = 16 standalone worlds but only
  // (Γ!)^{2^k/Γ} = 4 distinct workflow relations.
  Prop2Chain chain = MakeProp2Chain(2);
  const Module& m1 = chain.workflow->module(0);
  // Hide y0 (one of m1's outputs).
  Bitset64 hidden = Bitset64::Of(6, {2});
  Bitset64 visible = hidden.Complement();

  StandaloneWorlds standalone = EnumerateStandaloneWorlds(
      m1.FullRelation(), m1.inputs(), m1.outputs(), visible);
  EXPECT_EQ(standalone.num_worlds, 16);
  EXPECT_EQ(standalone.MinOutSize(), 2);

  WorkflowWorlds workflow_worlds =
      EnumerateWorkflowWorlds(*chain.workflow, visible, {});
  EXPECT_EQ(workflow_worlds.num_distinct_relations, 4);
  // Yet privacy is identical: every input of m1 still has 2 possible
  // outputs (the heart of Lemma 1).
  EXPECT_EQ(workflow_worlds.MinOutSize(0), 2);
  EXPECT_EQ(workflow_worlds.MinOutSize(1), 2);
}

TEST(WorkflowWorldsTest, FixedModulesConstrainWorlds) {
  // Example 7 shape, k = 1: public constant → private bijection. With the
  // public module fixed, hiding the intermediate attribute leaves the
  // bijection's output on the constant exposed via the visible final attr.
  Rng rng(5);
  Example7Chain chain = MakeExample7Chain(1, &rng);
  Bitset64 hidden = Bitset64::Of(3, {1});  // the intermediate attribute v0
  Bitset64 visible = hidden.Complement();
  WorkflowWorlds constrained = EnumerateWorkflowWorlds(
      *chain.workflow, visible, {chain.constant_index});
  // The actual input of the private module is the constant; its output is
  // visible, so OUT for that input is a singleton.
  EXPECT_EQ(constrained.MinOutSize(chain.bijection_index), 1);

  // Once the public module is free (privatized), 2 outputs are possible.
  WorkflowWorlds free = EnumerateWorkflowWorlds(*chain.workflow, visible, {});
  EXPECT_EQ(free.MinOutSize(chain.bijection_index), 2);
}

TEST(WorkflowWorldsTest, AllVisibleSingleWorld) {
  Prop2Chain chain = MakeProp2Chain(1);
  WorkflowWorlds worlds =
      EnumerateWorkflowWorlds(*chain.workflow, Bitset64::All(3), {});
  EXPECT_EQ(worlds.num_distinct_relations, 1);
  EXPECT_EQ(worlds.MinOutSize(0), 1);
}

}  // namespace
}  // namespace provview
