#include <gtest/gtest.h>

#include <functional>

#include "common/rng.h"
#include "common/wire.h"
#include "generators/requirement_gen.h"
#include "secureview/serialization.h"
#include "secureview/solvers.h"
#include "workflow/fig1_workflow.h"

namespace provview {
namespace {

SecureViewInstance MixedInstance() {
  SecureViewInstance inst;
  inst.kind = ConstraintKind::kCardinality;
  inst.num_attrs = 4;
  inst.attr_cost = {1.5, 2.0, 3.0, 0.5};
  SvModule m0;
  m0.name = "alpha";
  m0.inputs = {0, 1};
  m0.outputs = {2};
  m0.card_options = {CardOption{1, 0}, CardOption{0, 1}};
  SvModule pub;
  pub.name = "beta";
  pub.is_public = true;
  pub.privatization_cost = 4.25;
  pub.inputs = {2};
  pub.outputs = {3};
  inst.modules = {m0, pub};
  return inst;
}

bool InstancesEqual(const SecureViewInstance& a, const SecureViewInstance& b) {
  if (a.kind != b.kind || a.num_attrs != b.num_attrs ||
      a.attr_cost != b.attr_cost || a.num_modules() != b.num_modules()) {
    return false;
  }
  for (int i = 0; i < a.num_modules(); ++i) {
    const SvModule& ma = a.modules[static_cast<size_t>(i)];
    const SvModule& mb = b.modules[static_cast<size_t>(i)];
    if (ma.name != mb.name || ma.inputs != mb.inputs ||
        ma.outputs != mb.outputs || ma.is_public != mb.is_public ||
        ma.privatization_cost != mb.privatization_cost) {
      return false;
    }
    if (ma.card_options.size() != mb.card_options.size()) return false;
    for (size_t j = 0; j < ma.card_options.size(); ++j) {
      if (ma.card_options[j].alpha != mb.card_options[j].alpha ||
          ma.card_options[j].beta != mb.card_options[j].beta) {
        return false;
      }
    }
    if (ma.set_options.size() != mb.set_options.size()) return false;
    for (size_t j = 0; j < ma.set_options.size(); ++j) {
      if (ma.set_options[j].hidden_inputs != mb.set_options[j].hidden_inputs ||
          ma.set_options[j].hidden_outputs !=
              mb.set_options[j].hidden_outputs) {
        return false;
      }
    }
  }
  return true;
}

TEST(SerializationTest, RoundTripCardinality) {
  SecureViewInstance inst = MixedInstance();
  std::string text = SerializeInstance(inst);
  Result<SecureViewInstance> parsed = ParseInstance(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(InstancesEqual(inst, *parsed));
}

TEST(SerializationTest, RoundTripSetConstraints) {
  SecureViewInstance inst;
  inst.kind = ConstraintKind::kSet;
  inst.num_attrs = 3;
  inst.attr_cost = {1, 2, 3};
  SvModule m;
  m.name = "m";
  m.inputs = {0, 1};
  m.outputs = {2};
  m.set_options = {SetOption{{0}, {2}}, SetOption{{1}, {}},
                   SetOption{{}, {2}}};
  inst.modules = {m};
  Result<SecureViewInstance> parsed = ParseInstance(SerializeInstance(inst));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(InstancesEqual(inst, *parsed));
}

TEST(SerializationTest, RoundTripRandomInstances) {
  for (int seed = 0; seed < 6; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 53 + 2);
    RandomInstanceOptions opt;
    opt.kind = seed % 2 == 0 ? ConstraintKind::kCardinality
                             : ConstraintKind::kSet;
    opt.num_modules = 8;
    opt.public_fraction = 0.3;
    SecureViewInstance inst = MakeRandomInstance(opt, &rng);
    Result<SecureViewInstance> parsed =
        ParseInstance(SerializeInstance(inst));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_TRUE(InstancesEqual(inst, *parsed)) << "seed " << seed;
    // The round-tripped instance optimizes identically.
    EXPECT_NEAR(SolveGreedyPerModule(inst).cost,
                SolveGreedyPerModule(*parsed).cost, 1e-9);
  }
}

TEST(SerializationTest, RejectsMissingHeader) {
  EXPECT_FALSE(ParseInstance("kind set\nend\n").ok());
  EXPECT_FALSE(ParseInstance("").ok());
}

TEST(SerializationTest, RejectsMissingEnd) {
  SecureViewInstance inst = MixedInstance();
  std::string text = SerializeInstance(inst);
  text = text.substr(0, text.size() - 4);  // chop "end\n"
  EXPECT_FALSE(ParseInstance(text).ok());
}

TEST(SerializationTest, RejectsGarbage) {
  EXPECT_FALSE(
      ParseInstance("provview-instance v1\nfrobnicate 3\nend\n").ok());
  EXPECT_FALSE(
      ParseInstance("provview-instance v1\nattrs x\nend\n").ok());
  EXPECT_FALSE(
      ParseInstance("provview-instance v1\noption card 1 0\nend\n").ok());
}

TEST(SerializationTest, RejectsSemanticallyInvalid) {
  // References an attribute out of range → Validate() catches it.
  std::string text =
      "provview-instance v1\n"
      "kind cardinality\n"
      "attrs 1\n"
      "costs 1\n"
      "module m private 0\n"
      "inputs 5\n"
      "outputs 0\n"
      "option card 1 0\n"
      "end\n";
  EXPECT_FALSE(ParseInstance(text).ok());
}

TEST(SerializationTest, CommentsAndBlankLinesIgnored) {
  std::string text =
      "provview-instance v1\n"
      "\n"
      "kind set # constraints form\n"
      "attrs 2\n"
      "costs 1 1\n"
      "module m private 0\n"
      "inputs 0\n"
      "outputs 1\n"
      "option set in 0 out\n"
      "end\n";
  Result<SecureViewInstance> parsed = ParseInstance(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->kind, ConstraintKind::kSet);
}

TEST(SolutionSerializationTest, RoundTrip) {
  SecureViewSolution sol;
  sol.hidden = Bitset64::Of(6, {1, 4});
  sol.privatized = {0, 3};
  std::string text = SerializeSolution(sol);
  Result<SecureViewSolution> parsed = ParseSolution(text, 6);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->hidden, sol.hidden);
  EXPECT_EQ(parsed->privatized, sol.privatized);
}

TEST(SolutionSerializationTest, EmptySolution) {
  SecureViewSolution sol;
  sol.hidden = Bitset64(4);
  Result<SecureViewSolution> parsed =
      ParseSolution(SerializeSolution(sol), 4);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->hidden.empty());
  EXPECT_TRUE(parsed->privatized.empty());
}

TEST(SolutionSerializationTest, RejectsOutOfRange) {
  EXPECT_FALSE(ParseSolution("hidden 9 | privatized", 4).ok());
  EXPECT_FALSE(ParseSolution("3 hidden 1", 4).ok());
}

TEST(BinarySerializationTest, InstanceRoundTrip) {
  const SecureViewInstance inst = MixedInstance();
  std::string bytes;
  SerializeInstanceBinary(inst, &bytes);
  Result<SecureViewInstance> decoded = DeserializeInstanceBinary(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(InstancesEqual(inst, *decoded));
}

TEST(BinarySerializationTest, EveryTruncationIsRejected) {
  std::string bytes;
  SerializeInstanceBinary(MixedInstance(), &bytes);
  // No prefix of a valid encoding may decode (or over-read): chop every
  // suffix off and demand a typed rejection.
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DeserializeInstanceBinary(bytes.substr(0, len)).ok())
        << "prefix of " << len << " bytes decoded";
  }
  EXPECT_FALSE(DeserializeInstanceBinary(bytes + '\0').ok())
      << "trailing byte accepted";
}

TEST(BinarySerializationTest, RejectsWrongMagicAndForgedCounts) {
  std::string bytes;
  SerializeInstanceBinary(MixedInstance(), &bytes);
  std::string bad_magic = bytes;
  bad_magic[0] ^= 0x40;
  EXPECT_FALSE(DeserializeInstanceBinary(bad_magic).ok());

  // Forge the module count (the u32 after magic + version + kind +
  // num_attrs + the 4 attr costs) to ~4 billion: the decoder must reject
  // before allocating.
  std::string forged = bytes;
  const size_t module_count_off = 4 + 2 + 1 + 4 + 4 * sizeof(double);
  for (size_t i = 0; i < 4; ++i) forged[module_count_off + i] = '\xFF';
  EXPECT_FALSE(DeserializeInstanceBinary(forged).ok());
}

TEST(BinarySerializationTest, SolutionRoundTripAndTruncation) {
  SecureViewSolution sol;
  sol.hidden = Bitset64::Of(6, {1, 4});
  sol.privatized = {0, 3};
  std::string bytes;
  SerializeSolutionBinary(sol, &bytes);
  Result<SecureViewSolution> decoded = DeserializeSolutionBinary(bytes, 6);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->hidden, sol.hidden);
  EXPECT_EQ(decoded->privatized, sol.privatized);

  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DeserializeSolutionBinary(bytes.substr(0, len), 6).ok());
  }
  // A hidden attr past the universe is semantic garbage even when the
  // bytes are well-formed.
  EXPECT_FALSE(DeserializeSolutionBinary(bytes, 2).ok());
}

// -- workflow codec ---------------------------------------------------------

TEST(WorkflowSerializationTest, RoundTripIsByteStable) {
  // serialize -> deserialize -> serialize must reproduce the exact bytes:
  // the odometer row order makes the encoding canonical, so byte equality
  // covers the entire table contents, not just the shape.
  const Fig1Workflow fig1 = MakeFig1Workflow();
  std::string bytes;
  ASSERT_TRUE(SerializeWorkflowBinary(*fig1.workflow, &bytes).ok());

  Result<WorkflowBundle> decoded = DeserializeWorkflowBinary(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const Workflow& copy = *decoded->workflow;
  ASSERT_EQ(copy.num_attrs(), fig1.workflow->num_attrs());
  ASSERT_EQ(copy.num_modules(), fig1.workflow->num_modules());
  for (int mi = 0; mi < copy.num_modules(); ++mi) {
    EXPECT_EQ(copy.module(mi).name(), fig1.workflow->module(mi).name());
    EXPECT_EQ(copy.module(mi).is_public(),
              fig1.workflow->module(mi).is_public());
    EXPECT_EQ(copy.module(mi).privatization_cost(),
              fig1.workflow->module(mi).privatization_cost());
    EXPECT_EQ(copy.module(mi).inputs(), fig1.workflow->module(mi).inputs());
    EXPECT_EQ(copy.module(mi).outputs(), fig1.workflow->module(mi).outputs());
  }

  std::string again;
  ASSERT_TRUE(SerializeWorkflowBinary(copy, &again).ok());
  EXPECT_EQ(again, bytes);
}

TEST(WorkflowSerializationTest, EveryTruncationIsRejected) {
  const Fig1Workflow fig1 = MakeFig1Workflow();
  std::string bytes;
  ASSERT_TRUE(SerializeWorkflowBinary(*fig1.workflow, &bytes).ok());
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DeserializeWorkflowBinary(bytes.substr(0, len)).ok())
        << "prefix of " << len << " bytes decoded";
  }
  EXPECT_FALSE(DeserializeWorkflowBinary(bytes + 'x').ok());
}

// A hand-built minimal workflow encoding: attrs in={0} (domain 2) and
// out={1} (domain 2), one private module mapping the identity. Each lambda
// hook lets a test corrupt exactly one structural field while keeping the
// rest well-formed — proving the decoder rejects for the RIGHT reason.
std::string CraftWorkflowBytes(
    const std::function<void(WireWriter&, int stage)>& corrupt = nullptr) {
  std::string bytes;
  WireWriter w(&bytes);
  w.PutU32(0x46575650);  // "PVWF"
  w.PutU16(1);           // codec version
  const auto hook = [&](int stage) {
    if (corrupt) corrupt(w, stage);
  };
  w.PutU32(2);  // num_attrs
  w.PutString("in");
  w.PutU32(2);  // domain
  w.PutDouble(1.0);
  hook(0);  // after first attr
  w.PutString("out");
  w.PutU32(2);
  w.PutDouble(1.0);
  w.PutU32(1);  // num_modules
  w.PutString("m");
  w.PutU8(0);        // private
  w.PutDouble(2.5);  // privatization cost
  hook(1);           // before the id lists
  w.PutU32(1);       // num inputs
  w.PutU32(0);
  w.PutU32(1);  // num outputs
  w.PutU32(1);
  hook(2);      // before the row count
  w.PutU32(2);  // rows == domain product
  w.PutU32(0);  // f(0) = 0
  w.PutU32(1);  // f(1) = 1
  hook(3);  // after a complete workflow
  return bytes;
}

TEST(WorkflowSerializationTest, CraftedMinimalWorkflowDecodes) {
  Result<WorkflowBundle> decoded = DeserializeWorkflowBinary(
      CraftWorkflowBytes());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->workflow->num_attrs(), 2);
  EXPECT_EQ(decoded->workflow->num_modules(), 1);
  EXPECT_FALSE(decoded->workflow->module(0).is_public());
  EXPECT_EQ(decoded->workflow->module(0).privatization_cost(), 2.5);
}

TEST(WorkflowSerializationTest, HostileStructuresAreTypedRejections) {
  // Each case would be a PV_CHECK abort if it reached the model layer; the
  // decoder must catch every one as INVALID_ARGUMENT first.
  const auto expect_reject = [](std::string bytes, const char* why) {
    Result<WorkflowBundle> r = DeserializeWorkflowBinary(bytes);
    ASSERT_FALSE(r.ok()) << why;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << why;
  };

  std::string bad_magic = CraftWorkflowBytes();
  bad_magic[0] ^= 0x01;
  expect_reject(bad_magic, "wrong magic");

  std::string bad_version = CraftWorkflowBytes();
  bad_version[4] = 0x7E;
  expect_reject(bad_version, "unsupported version");

  // Duplicate attribute name: rewrite the second attr's name bytes ("out",
  // same length as "in" + 1... craft directly instead).
  {
    std::string bytes;
    WireWriter w(&bytes);
    w.PutU32(0x46575650);
    w.PutU16(1);
    w.PutU32(2);
    for (int i = 0; i < 2; ++i) {  // same name twice
      w.PutString("dup");
      w.PutU32(2);
      w.PutDouble(1.0);
    }
    expect_reject(bytes, "duplicate attribute name");
  }

  // Output id out of catalog range.
  {
    std::string bytes;
    WireWriter w(&bytes);
    w.PutU32(0x46575650);
    w.PutU16(1);
    w.PutU32(1);
    w.PutString("a");
    w.PutU32(2);
    w.PutDouble(1.0);
    w.PutU32(1);
    w.PutString("m");
    w.PutU8(0);
    w.PutDouble(1.0);
    w.PutU32(0);   // no inputs
    w.PutU32(1);   // one output
    w.PutU32(7);   // ...pointing past the catalog
    w.PutU32(1);
    w.PutU32(0);
    expect_reject(bytes, "output attr out of range");
  }

  // Input/output overlap within one module.
  {
    std::string bytes;
    WireWriter w(&bytes);
    w.PutU32(0x46575650);
    w.PutU16(1);
    w.PutU32(1);
    w.PutString("a");
    w.PutU32(2);
    w.PutDouble(1.0);
    w.PutU32(1);
    w.PutString("m");
    w.PutU8(0);
    w.PutDouble(1.0);
    w.PutU32(1);
    w.PutU32(0);  // input 0
    w.PutU32(1);
    w.PutU32(0);  // output 0 — overlaps
    w.PutU32(2);
    w.PutU32(0);
    w.PutU32(1);
    expect_reject(bytes, "input/output overlap");
  }

  // A PARTIAL table: row count below the domain product. Totality is the
  // structural guarantee that makes decoded TableModule::Eval safe.
  expect_reject(CraftWorkflowBytes([](WireWriter& w, int stage) {
                  if (stage == 2) {
                    w.PutU32(1);  // claim 1 row; domain needs 2
                    w.PutU32(0);
                  }
                }),
                "partial table");

  // Table value outside the output attribute's domain.
  {
    std::string bytes = CraftWorkflowBytes();
    bytes[bytes.size() - 4] = 0x09;  // last row's output value: 9 >= 2
    expect_reject(bytes, "out-of-domain table value");
  }

  // Forged counts must be rejected before any allocation is attempted.
  {
    std::string bytes;
    WireWriter w(&bytes);
    w.PutU32(0x46575650);
    w.PutU16(1);
    w.PutU32(0xFFFFFFFFu);  // ~4 billion attrs
    expect_reject(bytes, "forged attr count");
  }
}

TEST(WorkflowSerializationTest, CorruptionFuzzNeverCrashes) {
  const Fig1Workflow fig1 = MakeFig1Workflow();
  std::string bytes;
  ASSERT_TRUE(SerializeWorkflowBinary(*fig1.workflow, &bytes).ok());
  Rng rng(0x77666677u);
  for (int trial = 0; trial < 1500; ++trial) {
    std::string mutated = bytes;
    const int flips = 1 + static_cast<int>(rng.NextBelow(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBelow(mutated.size());
      mutated[pos] ^= static_cast<char>(1u << rng.NextBelow(8));
    }
    (void)DeserializeWorkflowBinary(mutated);  // typed or clean, never fatal
  }
}

}  // namespace
}  // namespace provview
