#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "generators/families.h"
#include "generators/random_workflow.h"
#include "module/module_library.h"
#include "privacy/safe_subset_search.h"
#include "privacy/standalone_privacy.h"
#include "privacy/workflow_privacy.h"

namespace provview {
namespace {

// ---------------------------------------------------------------------
// Theorem 4: per-module standalone-safe hidden sets compose to workflow
// privacy in all-private workflows. Verified against brute-force world
// enumeration on small random two-module chains.
// ---------------------------------------------------------------------
class Theorem4Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem4Test, CompositionIsWorkflowPrivate) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 5);
  // Small chain: m0: (i0, i1) -> d0 ; m1: (d0, i2) -> d1, with all-boolean
  // attributes so world enumeration stays feasible.
  auto catalog = std::make_shared<AttributeCatalog>();
  AttrId i0 = catalog->Add("i0"), i1 = catalog->Add("i1");
  AttrId d0 = catalog->Add("d0");
  AttrId i2 = catalog->Add("i2");
  AttrId d1 = catalog->Add("d1");
  Workflow w(catalog);
  w.AddModule(MakeRandomFunction("m0", catalog, {i0, i1}, {d0}, &rng));
  w.AddModule(MakeRandomFunction("m1", catalog, {d0, i2}, {d1}, &rng));
  ASSERT_TRUE(w.Validate().ok());

  const int64_t gamma = 2;
  std::vector<Bitset64> per_module;
  for (int i : w.PrivateModuleIndices()) {
    MinCostSafeResult r = MinCostSafeHiddenSet(w.module(i), gamma);
    ASSERT_TRUE(r.found);
    per_module.push_back(r.hidden);
  }
  ComposedSolution composed = ComposeStandaloneSolutions(w, per_module);
  // Sufficient-condition certificate holds...
  PrivacyCertificate cert = CertifyWorkflowPrivacy(w, composed.hidden, gamma);
  EXPECT_TRUE(cert.certified);
  // ...and the ground truth (brute-force worlds) confirms Γ-privacy.
  EXPECT_GE(GroundTruthWorkflowGamma(w, composed.hidden, {}), gamma);
}

INSTANTIATE_TEST_SUITE_P(RandomChains, Theorem4Test, ::testing::Range(0, 10));

// Workflow privacy can exceed the standalone certificate, never the other
// way around (the certificate is a sufficient condition).
TEST(Theorem4Test, GroundTruthAtLeastCertificate) {
  Rng rng(77);
  auto catalog = std::make_shared<AttributeCatalog>();
  AttrId i0 = catalog->Add("i0");
  AttrId d0 = catalog->Add("d0");
  AttrId d1 = catalog->Add("d1");
  Workflow w(catalog);
  w.AddModule(MakeRandomFunction("m0", catalog, {i0}, {d0}, &rng));
  w.AddModule(MakeRandomFunction("m1", catalog, {d0}, {d1}, &rng));
  ASSERT_TRUE(w.Validate().ok());
  // Sweep all hidden subsets of the 3 attributes.
  for (uint64_t mask = 0; mask < 8; ++mask) {
    Bitset64 hidden(3);
    for (int b = 0; b < 3; ++b) {
      if ((mask >> b) & 1u) hidden.Set(b);
    }
    std::vector<int64_t> gammas = PerModuleStandaloneGamma(w, hidden);
    int64_t standalone_min = std::min(gammas[0], gammas[1]);
    int64_t truth = GroundTruthWorkflowGamma(w, hidden, {});
    EXPECT_GE(truth, standalone_min) << "hidden=" << hidden.ToString();
  }
}

// ---------------------------------------------------------------------
// §5.1 / Example 7: with public modules, standalone privacy does NOT
// compose; privatization restores it (Theorem 8).
// ---------------------------------------------------------------------
TEST(Example7Test, InputHidingFailsNextToConstantPublicModule) {
  Rng rng(11);
  Example7Chain chain = MakeExample7Chain(2, &rng);
  const Module& priv = chain.workflow->module(chain.bijection_index);
  // Hide the private module's inputs (the intermediate attributes).
  Bitset64 hidden(chain.catalog->size());
  for (AttrId id : priv.inputs()) hidden.Set(id);
  // Standalone: safe for Γ = 4 (one-one, 2 hidden inputs).
  EXPECT_GE(MaxStandaloneGamma(priv, hidden.Complement()), 4);
  // Workflow with the public constant module visible: broken (Γ = 1).
  EXPECT_EQ(
      GroundTruthWorkflowGamma(*chain.workflow, hidden,
                               {chain.constant_index}),
      1);
  // Privatizing the constant module restores Γ ≥ 4 (Theorem 8).
  EXPECT_GE(GroundTruthWorkflowGamma(*chain.workflow, hidden, {}), 4);
}

TEST(Example7Test, OutputHidingFailsNextToInvertiblePublicModule) {
  Rng rng(13);
  Example7OutputChain chain = MakeExample7OutputChain(2, &rng);
  const Module& priv = chain.workflow->module(chain.bijection_index);
  Bitset64 hidden(chain.catalog->size());
  for (AttrId id : priv.outputs()) hidden.Set(id);
  EXPECT_GE(MaxStandaloneGamma(priv, hidden.Complement()), 4);
  // The public inverse downstream reveals everything.
  EXPECT_EQ(GroundTruthWorkflowGamma(*chain.workflow, hidden,
                                     {chain.invertible_index}),
            1);
  EXPECT_GE(GroundTruthWorkflowGamma(*chain.workflow, hidden, {}), 4);
}

TEST(Theorem8Test, CertificateDemandsPrivatization) {
  Rng rng(19);
  Example7Chain chain = MakeExample7Chain(2, &rng);
  const Module& priv = chain.workflow->module(chain.bijection_index);
  Bitset64 hidden(chain.catalog->size());
  for (AttrId id : priv.inputs()) hidden.Set(id);
  PrivacyCertificate cert =
      CertifyWorkflowPrivacy(*chain.workflow, hidden, 4);
  EXPECT_TRUE(cert.certified);
  // The hidden attributes touch the public constant module; Theorem 8
  // requires privatizing it.
  EXPECT_EQ(cert.required_privatizations,
            (std::vector<int>{chain.constant_index}));
}

TEST(Theorem8Test, ComposeCollectsPrivatizationCosts) {
  Rng rng(23);
  Example7Chain chain = MakeExample7Chain(2, &rng);
  chain.workflow->mutable_module(chain.constant_index)
      ->set_privatization_cost(7.0);
  const Module& priv = chain.workflow->module(chain.bijection_index);
  Bitset64 per_module(chain.catalog->size());
  for (AttrId id : priv.inputs()) per_module.Set(id);
  ComposedSolution composed =
      ComposeStandaloneSolutions(*chain.workflow, {per_module});
  EXPECT_EQ(composed.privatized_modules,
            (std::vector<int>{chain.constant_index}));
  EXPECT_DOUBLE_EQ(composed.privatization_cost, 7.0);
  EXPECT_GT(composed.attr_cost, 0.0);
}

// ---------------------------------------------------------------------
// Proposition 1 at the workflow level: growing the hidden set preserves
// the certificate.
// ---------------------------------------------------------------------
TEST(Proposition1Test, SupersetsStayCertified) {
  Rng rng(41);
  auto catalog = std::make_shared<AttributeCatalog>();
  AttrId i0 = catalog->Add("i0"), i1 = catalog->Add("i1");
  AttrId d0 = catalog->Add("d0"), d1 = catalog->Add("d1");
  Workflow w(catalog);
  w.AddModule(MakeRandomFunction("m0", catalog, {i0, i1}, {d0, d1}, &rng));
  ASSERT_TRUE(w.Validate().ok());
  MinCostSafeResult r = MinCostSafeHiddenSet(w.module(0), 2);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(CertifyWorkflowPrivacy(w, r.hidden, 2).certified);
  Bitset64 bigger = r.hidden;
  for (int a = 0; a < 4; ++a) {
    bigger.Set(a);
    EXPECT_TRUE(CertifyWorkflowPrivacy(w, bigger, 2).certified);
  }
}

TEST(PerModuleGammaTest, PublicModulesReportMax) {
  Rng rng(51);
  Example7Chain chain = MakeExample7Chain(1, &rng);
  std::vector<int64_t> gammas = PerModuleStandaloneGamma(
      *chain.workflow, Bitset64(chain.catalog->size()));
  EXPECT_EQ(gammas[static_cast<size_t>(chain.constant_index)],
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(gammas[static_cast<size_t>(chain.bijection_index)], 1);
}

}  // namespace
}  // namespace provview
