#include <gtest/gtest.h>

#include "generators/requirement_gen.h"
#include "lp/simplex.h"
#include "secureview/feasibility.h"
#include "secureview/ilp_encoding.h"
#include "secureview/solvers.h"

namespace provview {
namespace {

SecureViewInstance TwoModuleCardInstance() {
  SecureViewInstance inst;
  inst.kind = ConstraintKind::kCardinality;
  inst.num_attrs = 5;
  inst.attr_cost = {1.0, 2.0, 3.0, 4.0, 5.0};
  SvModule m0;
  m0.name = "m0";
  m0.inputs = {0, 1};
  m0.outputs = {2};
  m0.card_options = {CardOption{1, 0}, CardOption{0, 1}};
  SvModule m1;
  m1.name = "m1";
  m1.inputs = {2, 3};
  m1.outputs = {4};
  m1.card_options = {CardOption{2, 0}};
  inst.modules = {m0, m1};
  return inst;
}

TEST(EncodingStructureTest, CardinalityVariableCounts) {
  SecureViewInstance inst = TwoModuleCardInstance();
  SvEncoding enc = EncodeSecureView(inst);
  // x per attribute.
  EXPECT_EQ(enc.x_var.size(), 5u);
  // r per option: 2 + 1.
  EXPECT_EQ(enc.r_var[0].size(), 2u);
  EXPECT_EQ(enc.r_var[1].size(), 1u);
  // Total vars: 5 x + 3 r + y/z: m0 has (2 in + 1 out)·2 options = 6,
  // m1 has (2 in + 1 out)·1 = 3 → 5 + 3 + 9 = 17.
  EXPECT_EQ(enc.lp.num_vars(), 17);
  // Integer vars: x and r only.
  EXPECT_EQ(enc.integer_vars.size(), 8u);
  // No public modules → no w vars.
  for (int w : enc.w_var) EXPECT_EQ(w, -1);
}

TEST(EncodingStructureTest, ObjectiveUsesAttrCosts) {
  SecureViewInstance inst = TwoModuleCardInstance();
  SvEncoding enc = EncodeSecureView(inst);
  for (int b = 0; b < inst.num_attrs; ++b) {
    EXPECT_DOUBLE_EQ(
        enc.lp.objective_coeff(enc.x_var[static_cast<size_t>(b)]),
        inst.attr_cost[static_cast<size_t>(b)]);
  }
}

TEST(EncodingStructureTest, PublicModulesGetWeightedWVars) {
  SecureViewInstance inst = TwoModuleCardInstance();
  inst.modules[1].is_public = true;
  inst.modules[1].card_options.clear();
  inst.modules[1].privatization_cost = 9.0;
  SvEncoding enc = EncodeSecureView(inst);
  ASSERT_GE(enc.w_var[1], 0);
  EXPECT_DOUBLE_EQ(enc.lp.objective_coeff(enc.w_var[1]), 9.0);
  EXPECT_EQ(enc.w_var[0], -1);
}

TEST(EncodingStructureTest, SetEncodingSmallerThanCardinality) {
  SecureViewInstance inst;
  inst.kind = ConstraintKind::kSet;
  inst.num_attrs = 4;
  inst.attr_cost = {1, 1, 1, 1};
  SvModule m;
  m.name = "m";
  m.inputs = {0, 1};
  m.outputs = {2, 3};
  m.set_options = {SetOption{{0}, {2}}, SetOption{{1}, {}}};
  inst.modules = {m};
  SvEncoding enc = EncodeSecureView(inst);
  // 4 x + 2 r, no y/z.
  EXPECT_EQ(enc.lp.num_vars(), 6);
  // Constraints: (15) pick-one + (16) per option member: 2 + 1 = 3 → 4.
  EXPECT_EQ(enc.lp.num_constraints(), 4);
}

TEST(EncodingVariantTest, AllVariantsShareIntegralOptimum) {
  // The ablated encodings are valid IPs: their integral optima coincide
  // with the full encoding's.
  Rng rng(5);
  RandomInstanceOptions opt;
  opt.kind = ConstraintKind::kCardinality;
  opt.num_modules = 6;
  SecureViewInstance inst = MakeRandomInstance(opt, &rng);
  SvResult full = SolveExact(inst);
  ASSERT_TRUE(full.status.ok());
  for (CardEncodingVariant v :
       {CardEncodingVariant::kNoCoupling, CardEncodingVariant::kDirect}) {
    SvEncoding enc = EncodeCardinalityVariant(inst, v);
    BnbResult ilp = SolveIlp(enc.lp, enc.integer_vars);
    ASSERT_TRUE(ilp.status.ok());
    SecureViewSolution sol = DecodeSolution(inst, enc, ilp.x);
    EXPECT_TRUE(IsFeasible(inst, sol));
    EXPECT_NEAR(sol.TotalCost(inst), full.cost, 1e-6);
  }
}

TEST(EncodingVariantTest, RelaxationBoundOrdering) {
  // LP bounds: direct <= ... <= full <= OPT (each ablation only removes
  // constraints). Note no-coupling keeps (1)-(5) so it sits between.
  Rng rng(8);
  RandomInstanceOptions opt;
  opt.kind = ConstraintKind::kCardinality;
  opt.num_modules = 8;
  opt.max_list_length = 3;
  SecureViewInstance inst = MakeRandomInstance(opt, &rng);
  SvResult exact = SolveExact(inst);
  ASSERT_TRUE(exact.status.ok());
  auto bound = [&](CardEncodingVariant v) {
    SvEncoding enc = EncodeCardinalityVariant(inst, v);
    LpSolution s = SolveLp(enc.lp);
    EXPECT_TRUE(s.status.ok());
    return s.objective;
  };
  double full = bound(CardEncodingVariant::kFull);
  double nocouple = bound(CardEncodingVariant::kNoCoupling);
  EXPECT_LE(nocouple, full + 1e-6);
  EXPECT_LE(full, exact.cost + 1e-6);
}

TEST(DecodeTest, PrivatizationsAlwaysCanonical) {
  SecureViewInstance inst = TwoModuleCardInstance();
  inst.modules[1].is_public = true;
  inst.modules[1].card_options.clear();
  inst.modules[1].privatization_cost = 1.0;
  SvEncoding enc = EncodeSecureView(inst);
  std::vector<double> x(static_cast<size_t>(enc.lp.num_vars()), 0.0);
  x[static_cast<size_t>(enc.x_var[2])] = 1.0;  // attr 2 is m1's input
  SecureViewSolution sol = DecodeSolution(inst, enc, x);
  EXPECT_EQ(sol.privatized, (std::vector<int>{1}));
}

}  // namespace
}  // namespace provview
