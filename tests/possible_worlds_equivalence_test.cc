// Equivalence suite for the pruned/interned/parallel possible-worlds engine:
// on randomized small instances the optimized enumerator must return
// byte-identical num_worlds and out_sets to the retained naive reference,
// and the Γ short-circuit must agree with Algorithm 2.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "module/module_library.h"
#include "privacy/possible_worlds.h"
#include "privacy/standalone_privacy.h"

namespace provview {
namespace {

struct RandomInstance {
  CatalogPtr catalog;
  ModulePtr module;
  Relation relation;
  Bitset64 visible;
};

// A random module with `ki` inputs (domains in [2, in_dom]) and `ko`
// outputs (domains in [2, out_dom]), plus a random visible subset of its
// attributes. Domain caps keep |Range|^N within reach of the naive
// reference enumerator.
RandomInstance MakeInstance(int ki, int ko, int in_dom, int out_dom,
                            uint64_t seed) {
  RandomInstance inst;
  inst.catalog = std::make_shared<AttributeCatalog>();
  Rng rng(seed);
  std::vector<AttrId> in, out;
  for (int i = 0; i < ki; ++i) {
    in.push_back(inst.catalog->Add("i" + std::to_string(i),
                                   static_cast<int>(rng.NextInt(2, in_dom))));
  }
  for (int o = 0; o < ko; ++o) {
    out.push_back(inst.catalog->Add("o" + std::to_string(o),
                                    static_cast<int>(rng.NextInt(2, out_dom))));
  }
  inst.module = MakeRandomFunction("m", inst.catalog, in, out, &rng);
  inst.relation = inst.module->FullRelation();
  inst.visible = Bitset64(inst.catalog->size());
  for (int a = 0; a < inst.catalog->size(); ++a) {
    if (rng.NextBernoulli(0.5)) inst.visible.Set(a);
  }
  return inst;
}

void ExpectIdentical(const StandaloneWorlds& naive,
                     const StandaloneWorlds& fast, uint64_t seed) {
  EXPECT_EQ(naive.num_worlds, fast.num_worlds) << "seed " << seed;
  EXPECT_EQ(naive.out_sets, fast.out_sets) << "seed " << seed;
  EXPECT_EQ(naive.MinOutSize(), fast.MinOutSize()) << "seed " << seed;
}

TEST(PossibleWorldsEquivalenceTest, RandomizedInstancesMatchNaive) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    // Rotate through shapes: boolean 2-in/2-out, wide-domain outputs with a
    // single output attr, and wide-domain inputs with boolean outputs.
    RandomInstance inst = seed % 3 == 0   ? MakeInstance(2, 2, 2, 2, seed)
                          : seed % 3 == 1 ? MakeInstance(2, 1, 2, 4, seed)
                                          : MakeInstance(2, 2, 3, 2, seed);
    StandaloneWorlds naive = EnumerateStandaloneWorldsNaive(
        inst.relation, inst.module->inputs(), inst.module->outputs(),
        inst.visible);
    StandaloneWorlds fast = EnumerateStandaloneWorlds(
        inst.relation, inst.module->inputs(), inst.module->outputs(),
        inst.visible);
    ExpectIdentical(naive, fast, seed);
    EXPECT_LE(fast.pruned_candidates, fast.naive_candidates) << "seed " << seed;
    EXPECT_FALSE(fast.early_stopped);
  }
}

TEST(PossibleWorldsEquivalenceTest, LargerInputSpaceMatchesNaive) {
  for (uint64_t seed = 100; seed < 106; ++seed) {
    RandomInstance inst = MakeInstance(3, 1, 2, 3, seed);
    StandaloneWorlds naive = EnumerateStandaloneWorldsNaive(
        inst.relation, inst.module->inputs(), inst.module->outputs(),
        inst.visible, int64_t{1} << 40);
    StandaloneWorlds fast = EnumerateStandaloneWorlds(
        inst.relation, inst.module->inputs(), inst.module->outputs(),
        inst.visible, int64_t{1} << 40);
    ExpectIdentical(naive, fast, seed);
  }
}

TEST(PossibleWorldsEquivalenceTest, ParallelShardsMatchSequential) {
  for (uint64_t seed = 200; seed < 210; ++seed) {
    RandomInstance inst = MakeInstance(2, 2, 3, 2, seed);
    EnumerationOptions sequential;
    sequential.num_threads = 1;
    EnumerationOptions parallel;
    parallel.num_threads = 4;
    parallel.min_parallel_candidates = 0;  // force the pool even when tiny
    StandaloneWorlds a = EnumerateStandaloneWorlds(
        inst.relation, inst.module->inputs(), inst.module->outputs(),
        inst.visible, sequential);
    StandaloneWorlds b = EnumerateStandaloneWorlds(
        inst.relation, inst.module->inputs(), inst.module->outputs(),
        inst.visible, parallel);
    ExpectIdentical(a, b, seed);
  }
}

TEST(PossibleWorldsEquivalenceTest, ParallelMatchesWhenShardsDivideUnevenly) {
  // Regression: slot-0 feasible counts that are not a multiple of the
  // thread count once produced an empty trailing shard whose walker read
  // past the feasible-code array (6 feasible codes over 4 threads shards as
  // ceil(6/4)=2 → starts 0,2,4,6 — the last is out of range).
  for (uint64_t seed = 500; seed < 510; ++seed) {
    auto catalog = std::make_shared<AttributeCatalog>();
    std::vector<AttrId> in, out;
    for (int i = 0; i < 3; ++i) {
      in.push_back(catalog->Add("i" + std::to_string(i)));
    }
    out.push_back(catalog->Add("o0", 3));
    out.push_back(catalog->Add("o1", 2));
    Rng rng(seed);
    ModulePtr m = MakeRandomFunction("m", catalog, in, out, &rng);
    Relation rel = m->FullRelation();
    // Hide one input and the domain-3 output: every slot keeps all six
    // output codes feasible whenever both o1 values occur in its group.
    Bitset64 visible = Bitset64::All(catalog->size());
    visible.Reset(in[0]);
    visible.Reset(out[0]);

    EnumerationOptions sequential;
    sequential.num_threads = 1;
    sequential.max_candidates = int64_t{1} << 34;
    EnumerationOptions parallel = sequential;
    parallel.num_threads = 4;
    parallel.min_parallel_candidates = 0;
    StandaloneWorlds a = EnumerateStandaloneWorlds(rel, m->inputs(),
                                                   m->outputs(), visible,
                                                   sequential);
    StandaloneWorlds b = EnumerateStandaloneWorlds(rel, m->inputs(),
                                                   m->outputs(), visible,
                                                   parallel);
    ExpectIdentical(a, b, seed);
  }
}

TEST(PossibleWorldsEquivalenceTest, GammaShortCircuitAgreesWithAlgorithm2) {
  for (uint64_t seed = 300; seed < 320; ++seed) {
    RandomInstance inst = MakeInstance(2, 2, 3, 2, seed);
    for (int64_t gamma : {1, 2, 3, 5}) {
      bool alg2 = IsStandaloneSafe(inst.relation, inst.module->inputs(),
                                   inst.module->outputs(), inst.visible,
                                   gamma);
      bool brute = IsStandaloneSafeByEnumeration(
          inst.relation, inst.module->inputs(), inst.module->outputs(),
          inst.visible, gamma);
      EXPECT_EQ(alg2, brute) << "seed " << seed << " gamma " << gamma;
    }
  }
}

TEST(PossibleWorldsEquivalenceTest, GammaShortCircuitUnderThreads) {
  for (uint64_t seed = 400; seed < 406; ++seed) {
    RandomInstance inst = MakeInstance(2, 2, 3, 2, seed);
    EnumerationOptions opts;
    opts.num_threads = 4;
    opts.min_parallel_candidates = 0;
    bool alg2 = IsStandaloneSafe(inst.relation, inst.module->inputs(),
                                 inst.module->outputs(), inst.visible, 2);
    bool brute = IsStandaloneSafeByEnumeration(
        inst.relation, inst.module->inputs(), inst.module->outputs(),
        inst.visible, 2, opts);
    EXPECT_EQ(alg2, brute) << "seed " << seed;
  }
}

TEST(PossibleWorldsEquivalenceTest, EmptyRelationYieldsNoWorlds) {
  auto catalog = std::make_shared<AttributeCatalog>();
  AttrId a = catalog->Add("a");
  AttrId b = catalog->Add("b");
  Relation empty(Schema(catalog, {a, b}));
  StandaloneWorlds fast =
      EnumerateStandaloneWorlds(empty, {a}, {b}, Bitset64::All(2));
  StandaloneWorlds naive =
      EnumerateStandaloneWorldsNaive(empty, {a}, {b}, Bitset64::All(2));
  EXPECT_EQ(fast.num_worlds, naive.num_worlds);
  EXPECT_TRUE(fast.out_sets.empty());
}

}  // namespace
}  // namespace provview
