#include <gtest/gtest.h>

#include "common/combinatorics.h"
#include "generators/families.h"
#include "privacy/flip_world.h"
#include "privacy/standalone_privacy.h"
#include "workflow/fig1_workflow.h"

namespace provview {
namespace {

TEST(FlipTupleTest, SwapsPAndQValuesOnSharedAttrs) {
  std::vector<AttrId> t_attrs = {0, 1, 2};
  std::vector<AttrId> pq_attrs = {1, 2, 3};
  Tuple p = {0, 1, 0};  // over attrs 1,2,3
  Tuple q = {1, 0, 1};
  // t[1]=0=p[attr1] → q[attr1]=1; t[2]=1 ≠ p[attr2]=1? p[attr2]=1... t[2]=1
  // equals... walk carefully: attr1: p=0,q=1. attr2: p=1,q=0.
  Tuple t = {1, 0, 1};
  Tuple flipped = FlipTuple(t, t_attrs, pq_attrs, p, q);
  EXPECT_EQ(flipped[0], 1);  // attr 0 not in pq_attrs
  EXPECT_EQ(flipped[1], 1);  // 0 == p → q = 1
  EXPECT_EQ(flipped[2], 0);  // 1 == p → q = 0
}

TEST(FlipTupleTest, IsInvolution) {
  std::vector<AttrId> attrs = {0, 1, 2, 3};
  Tuple p = {0, 1, 1, 0};
  Tuple q = {1, 1, 0, 0};
  MixedRadixCounter c({2, 2, 2, 2});
  do {
    Tuple t = c.values();
    Tuple once = FlipTuple(t, attrs, attrs, p, q);
    EXPECT_EQ(FlipTuple(once, attrs, attrs, p, q), t);
  } while (c.Advance());
}

TEST(FlipTupleTest, IdentityWhenPEqualsQ) {
  std::vector<AttrId> attrs = {0, 1};
  Tuple p = {1, 0};
  Tuple t = {0, 1};
  EXPECT_EQ(FlipTuple(t, attrs, attrs, p, p), t);
}

// Lemma 1 end-to-end on the Figure-1 workflow: for module m1 with hidden
// attributes V̄1 = {a2, a4} (i.e. V1 = {a1, a3, a5} locally) and candidate
// output y ∈ OUT_{x,m1}, the flip workflow is a possible world that maps x
// to y.
TEST(FlipWorldTest, Lemma1WitnessOnFig1) {
  Fig1Workflow fig = MakeFig1Workflow();
  const Module& m1 = fig.workflow->module(fig.m1_index);
  Relation rel = m1.FullRelation();
  Bitset64 hidden = Bitset64::Of(7, {fig.a2, fig.a4});
  Bitset64 visible = hidden.Complement();

  Tuple x = {0, 0};
  // From the paper's discussion below Lemma 2: y = (1,0,0) ∈ OUT_{x,m1}
  // with witness x' = (0,1), y' = m1(x') = (1,1,0).
  Tuple y = {1, 0, 0};
  Tuple x_prime = {0, 1};
  Tuple y_prime = m1.Eval(x_prime);
  ASSERT_EQ(y_prime, (Tuple{1, 1, 0}));

  // p = (x, y), q = (x', y') over I1 ∪ O1.
  std::vector<AttrId> pq_attrs = {fig.a1, fig.a2, fig.a3, fig.a4, fig.a5};
  Tuple p = {x[0], x[1], y[0], y[1], y[2]};
  Tuple q = {x_prime[0], x_prime[1], y_prime[0], y_prime[1], y_prime[2]};

  WorkflowPtr flipped = BuildFlipWorkflow(*fig.workflow, pq_attrs, p, q);

  // (i) g_1 maps x to y.
  EXPECT_EQ(flipped->module(0).Eval(x), y);
  // (ii) the flipped provenance relation is a possible world: identical
  // visible projection.
  Relation original = fig.workflow->ProvenanceRelation();
  Relation world = flipped->ProvenanceRelation();
  EXPECT_TRUE(original.ProjectSet(visible).EqualsAsSet(
      world.ProjectSet(visible)));
  // (iii) it differs from the original on the hidden part (it's a genuinely
  // different world).
  EXPECT_FALSE(original.EqualsAsSet(world));
}

TEST(FlipWorldTest, EveryCountedOutputHasAFlipWitness) {
  // For every input x and every y ∈ OUT_{x,m1} (per the counting checker),
  // some witness row yields a flip workflow realizing (x → y) with the
  // right visible projection. This is the constructive content of Lemma 1.
  Fig1Workflow fig = MakeFig1Workflow();
  const Module& m1 = fig.workflow->module(fig.m1_index);
  Relation rel = m1.FullRelation();
  Bitset64 hidden = Bitset64::Of(7, {fig.a2, fig.a4, fig.a5});
  Bitset64 visible = hidden.Complement();
  Relation original = fig.workflow->ProvenanceRelation();
  std::vector<AttrId> pq_attrs = {fig.a1, fig.a2, fig.a3, fig.a4, fig.a5};

  for (const Tuple& xrow : rel.rows()) {
    Tuple x = rel.ProjectRow(xrow, m1.inputs());
    for (const Tuple& y :
         OutSet(rel, m1.inputs(), m1.outputs(), visible, x)) {
      // Find a witness row (Lemma 2).
      bool witnessed = false;
      for (const Tuple& wrow : rel.rows()) {
        Tuple xp = rel.ProjectRow(wrow, m1.inputs());
        Tuple yp = rel.ProjectRow(wrow, m1.outputs());
        // Visible parts must agree: a1 visible among inputs; a3 visible
        // among outputs.
        if (xp[0] != x[0] || yp[0] != y[0]) continue;
        Tuple p = {x[0], x[1], y[0], y[1], y[2]};
        Tuple q = {xp[0], xp[1], yp[0], yp[1], yp[2]};
        WorkflowPtr flipped = BuildFlipWorkflow(*fig.workflow, pq_attrs, p, q);
        if (flipped->module(0).Eval(x) != y) continue;
        Relation world = flipped->ProvenanceRelation();
        if (original.ProjectSet(visible).EqualsAsSet(
                world.ProjectSet(visible))) {
          witnessed = true;
          break;
        }
      }
      EXPECT_TRUE(witnessed) << "no flip witness for y";
    }
  }
}

TEST(FlipWorldTest, Lemma7PublicModulesOutsideHiddenAttrsUnchanged) {
  // Lemma 7: a module whose attributes avoid the hidden attributes of p,q
  // is untouched by the flip. Build fig1, flip w.r.t. m1's attrs where p,q
  // differ only on a2 and a4; m3 (inputs a4,a5) touches a4 → may change;
  // a module over only a1/a3 stays identical. Here we check which modules
  // change.
  Fig1Workflow fig = MakeFig1Workflow();
  std::vector<AttrId> pq_attrs = {fig.a1, fig.a2, fig.a3, fig.a4, fig.a5};
  // p, q agree everywhere except a2 (hidden input) and a4 (hidden output).
  Tuple p = {0, 0, 0, 1, 1};
  Tuple q = {0, 1, 0, 0, 1};
  std::vector<int> changed = ModulesChangedByFlip(*fig.workflow, pq_attrs, p, q);
  // m1 touches a2/a4 → changed; m2 (a3,a4→a6) touches a4 → changed;
  // m3 (a4,a5→a7) touches a4 → changed. None stays the same here, so
  // verify with p == q instead that nothing changes.
  EXPECT_FALSE(changed.empty());
  std::vector<int> unchanged =
      ModulesChangedByFlip(*fig.workflow, pq_attrs, p, p);
  EXPECT_TRUE(unchanged.empty());
}

TEST(FlipWorldTest, FlipPreservesPublicFlags) {
  Rng rng(4);
  Example7Chain chain = MakeExample7Chain(1, &rng);
  std::vector<AttrId> pq_attrs = {1, 2};  // v0, w0
  Tuple p = {0, 0};
  Tuple q = {1, 1};
  WorkflowPtr flipped = BuildFlipWorkflow(*chain.workflow, pq_attrs, p, q);
  EXPECT_TRUE(flipped->module(chain.constant_index).is_public());
  EXPECT_FALSE(flipped->module(chain.bijection_index).is_public());
}

}  // namespace
}  // namespace provview
