#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/bitset64.h"
#include "common/rng.h"

namespace provview {
namespace {

TEST(Bitset64Test, EmptyByDefault) {
  Bitset64 b(100);
  EXPECT_EQ(b.count(), 0);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.First(), -1);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(b.Test(i));
}

TEST(Bitset64Test, SetResetAssign) {
  Bitset64 b(70);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(69);
  EXPECT_EQ(b.count(), 4);
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  b.Reset(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.count(), 3);
  b.Assign(10, true);
  EXPECT_TRUE(b.Test(10));
  b.Assign(10, false);
  EXPECT_FALSE(b.Test(10));
}

TEST(Bitset64Test, OfAndToVectorRoundTrip) {
  std::vector<int> members = {3, 17, 64, 65, 127};
  Bitset64 b = Bitset64::Of(128, members);
  EXPECT_EQ(b.ToVector(), members);
}

TEST(Bitset64Test, AllHasExactUniverse) {
  for (int n : {0, 1, 63, 64, 65, 130}) {
    Bitset64 b = Bitset64::All(n);
    EXPECT_EQ(b.count(), n) << "n=" << n;
  }
}

TEST(Bitset64Test, FirstAndNextAfterIterate) {
  Bitset64 b = Bitset64::Of(200, {5, 64, 129, 199});
  std::vector<int> walked;
  for (int i = b.First(); i >= 0; i = b.NextAfter(i)) walked.push_back(i);
  EXPECT_EQ(walked, (std::vector<int>{5, 64, 129, 199}));
}

TEST(Bitset64Test, SetAlgebra) {
  Bitset64 a = Bitset64::Of(10, {1, 2, 3});
  Bitset64 b = Bitset64::Of(10, {3, 4});
  EXPECT_EQ((a | b).ToVector(), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ((a & b).ToVector(), (std::vector<int>{3}));
  EXPECT_EQ((a ^ b).ToVector(), (std::vector<int>{1, 2, 4}));
  EXPECT_EQ(Difference(a, b).ToVector(), (std::vector<int>{1, 2}));
}

TEST(Bitset64Test, SubsetAndIntersects) {
  Bitset64 small = Bitset64::Of(66, {0, 65});
  Bitset64 big = Bitset64::Of(66, {0, 2, 65});
  Bitset64 other = Bitset64::Of(66, {1, 3});
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
  EXPECT_TRUE(small.Intersects(big));
  EXPECT_FALSE(small.Intersects(other));
}

TEST(Bitset64Test, ComplementPartitionsUniverse) {
  Bitset64 a = Bitset64::Of(70, {0, 10, 69});
  Bitset64 c = a.Complement();
  EXPECT_EQ(a.count() + c.count(), 70);
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_EQ((a | c), Bitset64::All(70));
}

TEST(Bitset64Test, EqualityAndOrdering) {
  Bitset64 a = Bitset64::Of(10, {1, 5});
  Bitset64 b = Bitset64::Of(10, {1, 5});
  Bitset64 c = Bitset64::Of(10, {1, 6});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a < c || c < a);
  EXPECT_FALSE(a < b);
  EXPECT_FALSE(b < a);
}

TEST(Bitset64Test, ToStringFormat) {
  EXPECT_EQ(Bitset64::Of(8, {1, 3}).ToString(), "{1, 3}");
  EXPECT_EQ(Bitset64(8).ToString(), "{}");
}

TEST(Bitset64Test, HashDistinguishesSets) {
  std::set<uint64_t> hashes;
  for (int i = 0; i < 64; ++i) hashes.insert(Bitset64::Of(64, {i}).Hash());
  EXPECT_EQ(hashes.size(), 64u);
}

TEST(Bitset64Test, RandomizedAlgebraAgainstStdSet) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBelow(150));
    std::set<int> sa, sb;
    Bitset64 a(n), b(n);
    for (int i = 0; i < n; ++i) {
      if (rng.NextBernoulli(0.4)) {
        a.Set(i);
        sa.insert(i);
      }
      if (rng.NextBernoulli(0.4)) {
        b.Set(i);
        sb.insert(i);
      }
    }
    std::set<int> su, si, sd;
    std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                   std::inserter(su, su.begin()));
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::inserter(si, si.begin()));
    std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::inserter(sd, sd.begin()));
    EXPECT_EQ((a | b).ToVector(), std::vector<int>(su.begin(), su.end()));
    EXPECT_EQ((a & b).ToVector(), std::vector<int>(si.begin(), si.end()));
    EXPECT_EQ(Difference(a, b).ToVector(),
              std::vector<int>(sd.begin(), sd.end()));
    EXPECT_EQ(a.count(), static_cast<int>(sa.size()));
    EXPECT_EQ(a.IsSubsetOf(b),
              std::includes(sb.begin(), sb.end(), sa.begin(), sa.end()));
  }
}

}  // namespace
}  // namespace provview
