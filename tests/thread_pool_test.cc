#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace provview {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter(0);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter(0);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ShardedForPartitionsExactly) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(1000);
  pool.ShardedFor(1000, 6, [&](int shard, int64_t begin, int64_t end) {
    (void)shard;
    for (int64_t i = begin; i < end; ++i) {
      touched[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ShardedForSkipsEmptyTrailingShards) {
  // total=9, shards=4 → chunk=3 → shard 3 would start at 9 == total; the
  // ceil division must not produce an empty (or out-of-range) shard.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(9);
  std::atomic<int> invocations(0);
  pool.ShardedFor(9, 4, [&](int, int64_t begin, int64_t end) {
    invocations.fetch_add(1);
    EXPECT_LT(begin, end);
    for (int64_t i = begin; i < end; ++i) {
      touched[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  EXPECT_EQ(invocations.load(), 3);
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ShardedForRunsInlineForSingleShard) {
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  std::thread::id executed_on;
  pool.ShardedFor(10, 1, [&](int, int64_t begin, int64_t end) {
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 10);
    executed_on = std::this_thread::get_id();
  });
  EXPECT_EQ(executed_on, caller);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter(0);
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

}  // namespace
}  // namespace provview
