#include <gtest/gtest.h>

#include "secureview/instance.h"

namespace provview {
namespace {

SecureViewInstance SmallCardInstance() {
  SecureViewInstance inst;
  inst.kind = ConstraintKind::kCardinality;
  inst.num_attrs = 5;
  inst.attr_cost = {1.0, 2.0, 3.0, 4.0, 5.0};
  SvModule m0;
  m0.name = "m0";
  m0.inputs = {0, 1};
  m0.outputs = {2};
  m0.card_options = {CardOption{1, 0}, CardOption{0, 1}};
  SvModule m1;
  m1.name = "m1";
  m1.inputs = {2, 3};
  m1.outputs = {4};
  m1.card_options = {CardOption{2, 0}};
  inst.modules = {m0, m1};
  return inst;
}

TEST(InstanceTest, ValidInstancePasses) {
  EXPECT_TRUE(SmallCardInstance().Validate().ok());
}

TEST(InstanceTest, MaxListLength) {
  EXPECT_EQ(SmallCardInstance().MaxListLength(), 2);
}

TEST(InstanceTest, DataSharingDegree) {
  SecureViewInstance inst = SmallCardInstance();
  EXPECT_EQ(inst.DataSharingDegree(), 1);
  // Make attr 2 feed another module too.
  SvModule m2;
  m2.name = "m2";
  m2.inputs = {2};
  m2.outputs = {};
  m2.card_options = {CardOption{1, 0}};
  inst.modules.push_back(m2);
  EXPECT_EQ(inst.DataSharingDegree(), 2);
}

TEST(InstanceTest, AttrCostSums) {
  SecureViewInstance inst = SmallCardInstance();
  EXPECT_DOUBLE_EQ(inst.AttrCost(Bitset64::Of(5, {0, 4})), 6.0);
  EXPECT_DOUBLE_EQ(inst.AttrCost(Bitset64(5)), 0.0);
}

TEST(InstanceTest, PrivatePublicPartition) {
  SecureViewInstance inst = SmallCardInstance();
  EXPECT_EQ(inst.PrivateModules().size(), 2u);
  EXPECT_TRUE(inst.PublicModules().empty());
  inst.modules[0].is_public = true;
  inst.modules[0].card_options.clear();
  EXPECT_EQ(inst.PublicModules(), (std::vector<int>{0}));
}

TEST(InstanceValidationTest, RejectsBadAttrIndex) {
  SecureViewInstance inst = SmallCardInstance();
  inst.modules[0].inputs.push_back(99);
  EXPECT_FALSE(inst.Validate().ok());
}

TEST(InstanceValidationTest, RejectsInputOutputOverlap) {
  SecureViewInstance inst = SmallCardInstance();
  inst.modules[0].outputs.push_back(0);  // attr 0 already an input
  EXPECT_FALSE(inst.Validate().ok());
}

TEST(InstanceValidationTest, RejectsEmptyRequirementList) {
  SecureViewInstance inst = SmallCardInstance();
  inst.modules[1].card_options.clear();
  EXPECT_FALSE(inst.Validate().ok());
}

TEST(InstanceValidationTest, RejectsOutOfRangeCardOption) {
  SecureViewInstance inst = SmallCardInstance();
  inst.modules[0].card_options.push_back(CardOption{3, 0});  // only 2 inputs
  EXPECT_FALSE(inst.Validate().ok());
}

TEST(InstanceValidationTest, RejectsPublicModuleWithRequirements) {
  SecureViewInstance inst = SmallCardInstance();
  inst.modules[0].is_public = true;  // still has card_options
  EXPECT_FALSE(inst.Validate().ok());
}

TEST(InstanceValidationTest, RejectsNegativeCost) {
  SecureViewInstance inst = SmallCardInstance();
  inst.attr_cost[2] = -1.0;
  EXPECT_FALSE(inst.Validate().ok());
}

TEST(InstanceValidationTest, RejectsSetOptionOutsideModule) {
  SecureViewInstance inst;
  inst.kind = ConstraintKind::kSet;
  inst.num_attrs = 3;
  inst.attr_cost = {1, 1, 1};
  SvModule m;
  m.name = "m";
  m.inputs = {0};
  m.outputs = {1};
  m.set_options = {SetOption{{2}, {}}};  // attr 2 is not an input of m
  inst.modules = {m};
  EXPECT_FALSE(inst.Validate().ok());
}

TEST(SolutionTest, CostsSplitAttrAndPrivatization) {
  SecureViewInstance inst = SmallCardInstance();
  inst.modules[0].is_public = true;
  inst.modules[0].card_options.clear();
  inst.modules[0].privatization_cost = 10.0;
  SecureViewSolution sol;
  sol.hidden = Bitset64::Of(5, {0, 2});
  sol.privatized = {0};
  EXPECT_DOUBLE_EQ(sol.AttrCost(inst), 4.0);
  EXPECT_DOUBLE_EQ(sol.PrivatizationCost(inst), 10.0);
  EXPECT_DOUBLE_EQ(sol.TotalCost(inst), 14.0);
}

}  // namespace
}  // namespace provview
