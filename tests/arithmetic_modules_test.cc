// Arithmetic module library (adder / comparator / mux) plus their privacy
// profiles — richer module functionality for realistic workflow workloads.
#include <gtest/gtest.h>

#include "common/combinatorics.h"
#include "module/module_library.h"
#include "privacy/safe_subset_search.h"
#include "privacy/standalone_privacy.h"
#include "workflow/workflow.h"

namespace provview {
namespace {

CatalogPtr BoolCatalog(int n) {
  auto catalog = std::make_shared<AttributeCatalog>();
  for (int i = 0; i < n; ++i) catalog->Add("a" + std::to_string(i));
  return catalog;
}

int64_t EncodeBits(const Tuple& t, size_t from, size_t width) {
  int64_t v = 0;
  for (size_t i = 0; i < width; ++i) {
    v |= static_cast<int64_t>(t[from + i]) << i;
  }
  return v;
}

TEST(AdderTest, AddsAllOperandPairs) {
  auto catalog = BoolCatalog(7);
  ModulePtr adder = MakeAdder("add", catalog, {0, 1}, {2, 3}, {4, 5, 6});
  MixedRadixCounter c({2, 2, 2, 2});
  do {
    Tuple in = c.values();
    Tuple out = adder->Eval(in);
    int64_t lhs = EncodeBits(in, 0, 2);
    int64_t rhs = EncodeBits(in, 2, 2);
    int64_t sum = EncodeBits(out, 0, 3);
    EXPECT_EQ(sum, lhs + rhs);
  } while (c.Advance());
}

TEST(AdderTest, NotInjectiveButSurjectiveOnRange) {
  auto catalog = BoolCatalog(7);
  ModulePtr adder = MakeAdder("add", catalog, {0, 1}, {2, 3}, {4, 5, 6});
  EXPECT_FALSE(adder->IsInjective());  // 1+2 == 2+1
}

TEST(AdderTest, PrivacyProfile) {
  auto catalog = BoolCatalog(7);
  ModulePtr adder = MakeAdder("add", catalog, {0, 1}, {2, 3}, {4, 5, 6});
  // Hiding one full operand gives at least 4 possible sums... actually the
  // checker answers exactly; assert the qualitative ordering instead.
  Bitset64 hide_operand = Bitset64::Of(7, {2, 3});
  Bitset64 hide_sum = Bitset64::Of(7, {4, 5, 6});
  int64_t g_operand = MaxStandaloneGamma(*adder, hide_operand.Complement());
  int64_t g_sum = MaxStandaloneGamma(*adder, hide_sum.Complement());
  EXPECT_GE(g_operand, 4);  // 4 values of the hidden operand → ≥4 sums
  EXPECT_EQ(g_sum, 8);      // sum fully hidden → full 3-bit range
  EXPECT_EQ(MaxStandaloneGamma(*adder, Bitset64::All(7)), 1);
}

TEST(ComparatorTest, ComparesAllPairs) {
  auto catalog = BoolCatalog(5);
  ModulePtr cmp = MakeComparator("cmp", catalog, {0, 1}, {2, 3}, 4);
  MixedRadixCounter c({2, 2, 2, 2});
  do {
    Tuple in = c.values();
    int64_t lhs = EncodeBits(in, 0, 2);
    int64_t rhs = EncodeBits(in, 2, 2);
    EXPECT_EQ(cmp->Eval(in)[0], lhs >= rhs ? 1 : 0);
  } while (c.Advance());
}

TEST(ComparatorTest, CardinalityFrontierForGamma2) {
  auto catalog = BoolCatalog(5);
  ModulePtr cmp = MakeComparator("cmp", catalog, {0, 1}, {2, 3}, 4);
  // Hiding the single output always gives 2-privacy.
  std::vector<CardinalityPair> frontier = MinimalSafeCardinalityPairs(*cmp, 2);
  bool has_output_option = false;
  for (const CardinalityPair& p : frontier) {
    if (p.alpha == 0 && p.beta == 1) has_output_option = true;
  }
  EXPECT_TRUE(has_output_option);
}

TEST(MuxTest, SelectsCorrectBranch) {
  auto catalog = BoolCatalog(7);
  ModulePtr mux = MakeMux("mux", catalog, 0, {1, 2}, {3, 4}, {5, 6});
  EXPECT_EQ(mux->Eval({0, 1, 0, 0, 1}), (Tuple{1, 0}));  // select=0 → a
  EXPECT_EQ(mux->Eval({1, 1, 0, 0, 1}), (Tuple{0, 1}));  // select=1 → b
}

TEST(MuxTest, HidingSelectAloneIsNotEnough) {
  auto catalog = BoolCatalog(7);
  ModulePtr mux = MakeMux("mux", catalog, 0, {1, 2}, {3, 4}, {5, 6});
  // With both branches visible and equal on some rows, output can be
  // pinned: when a == b the output is forced regardless of select.
  Bitset64 hide_select = Bitset64::Of(7, {0});
  EXPECT_EQ(MaxStandaloneGamma(*mux, hide_select.Complement()), 1);
  // Hiding the outputs guarantees 4-privacy (2 bits free).
  Bitset64 hide_out = Bitset64::Of(7, {5, 6});
  EXPECT_EQ(MaxStandaloneGamma(*mux, hide_out.Complement()), 4);
}

TEST(ArithmeticWorkflowTest, AdderComparatorPipeline) {
  // (x + y) computed by an adder, then compared against a threshold input.
  auto catalog = BoolCatalog(12);
  // x: 0,1; y: 2,3; sum: 4,5,6; threshold t: 7,8,9 (3 bits); out: 10.
  Workflow w(catalog);
  w.AddModule(MakeAdder("add", catalog, {0, 1}, {2, 3}, {4, 5, 6}));
  w.AddModule(MakeComparator("cmp", catalog, {4, 5, 6}, {7, 8, 9}, 10));
  ASSERT_TRUE(w.Validate().ok());
  // 2 + 3 = 5 >= 4 → 1.
  // Initial inputs in id order: 0,1,2,3,7,8,9.
  Tuple result = w.Execute({0, 1, 1, 1, 0, 0, 1});
  // sum bits (4,5,6) = 5 = 101b → {1,0,1}; threshold = 4 = 001b(LE {0,0,1}).
  EXPECT_EQ(result[4], 1);
  EXPECT_EQ(result[5], 0);
  EXPECT_EQ(result[6], 1);
  EXPECT_EQ(result[10], 1);
  EXPECT_EQ(w.DataSharingDegree(), 1);
}

}  // namespace
}  // namespace provview
