#include <gtest/gtest.h>

#include "generators/families.h"
#include "secureview/feasibility.h"
#include "secureview/from_workflow.h"
#include "secureview/provenance_view.h"
#include "secureview/solvers.h"
#include "workflow/fig1_workflow.h"

namespace provview {
namespace {

ProvenanceView MakeFig1View(const Fig1Workflow& fig,
                            std::initializer_list<int> hidden) {
  SecureViewSolution sol;
  sol.hidden = Bitset64::Of(7, hidden);
  return ProvenanceView(fig.workflow.get(), sol);
}

TEST(ProvenanceViewTest, VisibilityQueries) {
  Fig1Workflow fig = MakeFig1Workflow();
  ProvenanceView view = MakeFig1View(fig, {fig.a2, fig.a4});
  EXPECT_FALSE(view.IsVisible(fig.a2));
  EXPECT_TRUE(view.IsVisible(fig.a1));
  EXPECT_EQ(view.VisibleAttrs(),
            (std::vector<AttrId>{fig.a1, fig.a3, fig.a5, fig.a6, fig.a7}));
}

TEST(ProvenanceViewTest, MaterializeMatchesProjection) {
  Fig1Workflow fig = MakeFig1Workflow();
  ProvenanceView view = MakeFig1View(fig, {fig.a2, fig.a4});
  Relation materialized = view.Materialize();
  Relation expected =
      fig.workflow->ProvenanceRelation().ProjectSet(view.visible());
  EXPECT_TRUE(materialized.EqualsAsSet(expected));
  EXPECT_EQ(materialized.schema().arity(), 5);
}

TEST(ProvenanceViewTest, MaterializeOnSubset) {
  Fig1Workflow fig = MakeFig1Workflow();
  ProvenanceView view = MakeFig1View(fig, {fig.a2});
  Relation r = view.MaterializeOn({{0, 0}});
  EXPECT_EQ(r.num_rows(), 1);
  // a2 is projected away.
  EXPECT_FALSE(r.schema().ContainsAttr(fig.a2));
}

TEST(ProvenanceViewTest, ProducerNamesKeepStructure) {
  // "the user can infer exactly which module produced which visible data
  // item" — and for hidden ones too; structure is never hidden.
  Fig1Workflow fig = MakeFig1Workflow();
  ProvenanceView view = MakeFig1View(fig, {fig.a4});
  EXPECT_EQ(view.ProducerDisplayName(fig.a3), "m1");
  EXPECT_EQ(view.ProducerDisplayName(fig.a4), "m1");
  EXPECT_EQ(view.ProducerDisplayName(fig.a6), "m2");
  EXPECT_EQ(view.ProducerDisplayName(fig.a1), "(external input)");
}

TEST(ProvenanceViewTest, DependencyQueries) {
  Fig1Workflow fig = MakeFig1Workflow();
  ProvenanceView view = MakeFig1View(fig, {});
  // a6 depends on a1 through m1 → m2.
  EXPECT_TRUE(view.Depends(fig.a6, fig.a1));
  EXPECT_TRUE(view.Depends(fig.a7, fig.a4));
  EXPECT_TRUE(view.Depends(fig.a3, fig.a3));
  // No backward or lateral dependencies.
  EXPECT_FALSE(view.Depends(fig.a1, fig.a6));
  EXPECT_FALSE(view.Depends(fig.a6, fig.a7));
  EXPECT_FALSE(view.Depends(fig.a6, fig.a5));  // a5 only feeds m3
}

TEST(ProvenanceViewTest, PrivatizedModulesRenamed) {
  Rng rng(3);
  Example7Chain chain = MakeExample7Chain(1, &rng);
  SecureViewSolution sol;
  sol.hidden = Bitset64(chain.catalog->size());
  sol.hidden.Set(1);  // the intermediate attribute, adjacent to the public
  sol.privatized = {chain.constant_index};
  ProvenanceView view(chain.workflow.get(), sol);
  EXPECT_TRUE(view.IsPrivatized(chain.constant_index));
  EXPECT_EQ(view.ModuleDisplayName(chain.constant_index),
            "private-" + std::to_string(chain.constant_index));
  EXPECT_EQ(view.ModuleDisplayName(chain.bijection_index), "m_private");
  EXPECT_EQ(view.ProducerDisplayName(1),
            "private-" + std::to_string(chain.constant_index));
}

TEST(ProvenanceViewTest, LostUtilitySumsHiddenCosts) {
  Fig1Workflow fig = MakeFig1Workflow();
  fig.catalog->SetCost(fig.a2, 2.5);
  fig.catalog->SetCost(fig.a4, 1.5);
  ProvenanceView view = MakeFig1View(fig, {fig.a2, fig.a4});
  EXPECT_DOUBLE_EQ(view.LostUtility(), 4.0);
}

TEST(ProvenanceViewTest, EndToEndFromOptimizer) {
  Fig1Workflow fig = MakeFig1Workflow();
  SecureViewInstance inst =
      InstanceFromWorkflow(*fig.workflow, 2, ConstraintKind::kSet);
  SvResult exact = SolveExact(inst);
  ASSERT_TRUE(exact.status.ok());
  ProvenanceView view(fig.workflow.get(), exact.solution);
  EXPECT_DOUBLE_EQ(view.LostUtility(), exact.cost);
  // The published view has fewer columns than the full relation.
  EXPECT_LT(view.Materialize().schema().arity(), 7);
}

}  // namespace
}  // namespace provview
