// Genomics scenario from the paper's introduction: a proprietary genetic
// disorder-susceptibility module embedded in a pipeline with well-known
// public pre/post-processing modules. The owner wants Γ-privacy for the
// proprietary module while exposing as much provenance as possible.
//
// Pipeline (all attributes boolean, standing for discretized features):
//   reformat (public): raw sample fields → normalized features f1, f2
//   align    (public): reference panel r → alignment signal g
//   susceptibility (PRIVATE): (f1, f2, g) → risk class (c1, c2)
//   report   (public): (c1, c2) → patient report bits (p1, p2)
//
// Run: ./genomics_pipeline
#include <iostream>

#include "common/table_printer.h"
#include "module/module_library.h"
#include "privacy/standalone_privacy.h"
#include "privacy/workflow_privacy.h"
#include "secureview/feasibility.h"
#include "secureview/from_workflow.h"
#include "secureview/solvers.h"

using namespace provview;

int main() {
  auto catalog = std::make_shared<AttributeCatalog>();
  // Costs express the utility users lose when the item is hidden:
  // raw inputs are cheap to hide, the report is precious.
  AttrId s1 = catalog->Add("raw_s1", 2, 1.0);
  AttrId s2 = catalog->Add("raw_s2", 2, 1.0);
  AttrId f1 = catalog->Add("feat_f1", 2, 2.0);
  AttrId f2 = catalog->Add("feat_f2", 2, 2.0);
  AttrId r = catalog->Add("ref_panel", 2, 1.0);
  AttrId g = catalog->Add("align_g", 2, 2.0);
  AttrId c1 = catalog->Add("risk_c1", 2, 3.0);
  AttrId c2 = catalog->Add("risk_c2", 2, 3.0);
  AttrId p1 = catalog->Add("report_p1", 2, 6.0);
  AttrId p2 = catalog->Add("report_p2", 2, 6.0);

  Workflow w(catalog);
  ModulePtr reformat = MakeIdentity("reformat", catalog, {s1, s2}, {f1, f2});
  reformat->set_public(true);
  reformat->set_privatization_cost(2.0);
  w.AddModule(std::move(reformat));

  ModulePtr align = MakeParity("align", catalog, {r}, g);
  align->set_public(true);
  align->set_privatization_cost(1.0);
  w.AddModule(std::move(align));

  // The proprietary module: a fixed but "unknown" boolean function.
  Rng rng(2026);
  w.AddModule(MakeRandomFunction("susceptibility", catalog, {f1, f2, g},
                                 {c1, c2}, &rng));

  ModulePtr report = MakeNegation("report", catalog, {c1, c2}, {p1, p2});
  report->set_public(true);
  report->set_privatization_cost(4.0);
  w.AddModule(std::move(report));

  PV_CHECK(w.Validate().ok());
  std::cout << w.DebugString();

  const int64_t gamma = 2;
  PrintBanner("Secure-View with public modules (Section 5), Gamma = 2");
  SecureViewInstance inst = InstanceFromWorkflow(w, gamma, ConstraintKind::kSet);
  SvResult exact = SolveExact(inst);
  PV_CHECK(exact.status.ok());

  std::cout << "hidden data items:\n";
  for (int a : exact.solution.hidden.ToVector()) {
    std::cout << "  " << catalog->Name(a) << " (cost " << catalog->Cost(a)
              << ")\n";
  }
  std::cout << "privatized public modules:\n";
  if (exact.solution.privatized.empty()) std::cout << "  (none)\n";
  for (int i : exact.solution.privatized) {
    std::cout << "  " << w.module(i).name() << " (cost "
              << w.module(i).privatization_cost() << ")\n";
  }
  std::cout << "total cost = " << exact.cost << "\n";

  PrintBanner("Comparison of solvers");
  TablePrinter table({"solver", "cost", "feasible", "certified (Thm 8)"});
  auto report_row = [&](const std::string& name, const SvResult& r) {
    table.NewRow()
        .AddCell(name)
        .AddCell(r.cost, 2)
        .AddCell(IsFeasible(inst, r.solution) ? "yes" : "NO")
        .AddCell(VerifySolutionSemantics(w, r.solution, gamma) ? "yes" : "NO");
  };
  report_row("exact ILP", exact);
  report_row("threshold rounding", SolveByThresholdRounding(inst));
  report_row("greedy per-module", SolveGreedyPerModule(inst));
  report_row("greedy coverage", SolveGreedyCoverage(inst));
  SecureViewSolution baseline = UnionOfStandaloneOptima(w, gamma);
  SvResult baseline_result;
  baseline_result.solution = baseline;
  baseline_result.cost = baseline.TotalCost(inst);
  baseline_result.status = Status::OK();
  report_row("standalone union", baseline_result);
  table.Print();

  // Sanity: the view the owner ships.
  PrintBanner("Published provenance view (visible columns only)");
  Relation prov = w.ProvenanceRelation();
  std::cout << prov.ProjectSet(exact.solution.hidden.Complement()).ToString();
  return 0;
}
