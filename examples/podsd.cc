// podsd — the certification daemon, as a standalone binary.
//
//   podsd [--port=N] [--engine-threads=N] [--no-task-graph]
//         [--cache-bytes=N] [--reactor-threads=N] [--no-reactor]
//         [--memory-budget=N] [--max-pending=N]
//
// Binds 127.0.0.1 (port 0 = kernel-assigned, printed on stdout), serves the
// built-in workflow registry, and runs until SIGINT/SIGTERM. Pair with
// podsctl to talk to it:
//
//   $ podsd --port=7411 &
//   $ podsctl 7411 ping
//   $ podsctl 7411 certify fig1 gamma=2 hidden=3,4
//   $ podsctl 7411 stat
//
// --cache-bytes=N caps the shared verdict cache (measured bytes across all
// registered workflows; eviction only forgets verdicts). 0 = unbounded.
// --reactor-threads=N sizes the epoll front-end (default 2; thread count
// stays bounded no matter how many clients connect); --no-reactor selects
// the legacy thread-per-connection front-end. --max-pending=N and
// --memory-budget=N size the request-level admission gate (depth units and
// shared engine bytes; 0 bytes = unbounded).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/daemon.h"
#include "server/registry.h"

int main(int argc, char** argv) {
  uint16_t port = 0;
  provview::PodsDaemon::Options options;
  long long cache_bytes = 0;  // 0 = unbounded
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--port=", 7) == 0) {
      const long v = std::strtol(arg + 7, nullptr, 10);
      if (v < 0 || v > 65535) {
        std::fprintf(stderr, "podsd: bad port '%s'\n", arg + 7);
        return 2;
      }
      port = static_cast<uint16_t>(v);
    } else if (std::strncmp(arg, "--engine-threads=", 17) == 0) {
      const long v = std::strtol(arg + 17, nullptr, 10);
      if (v < 0 || v > 1024) {
        std::fprintf(stderr, "podsd: bad engine thread count '%s'\n",
                     arg + 17);
        return 2;
      }
      options.engine_threads = static_cast<int>(v);
    } else if (std::strcmp(arg, "--no-task-graph") == 0) {
      options.use_task_graph = false;
    } else if (std::strncmp(arg, "--cache-bytes=", 14) == 0) {
      cache_bytes = std::strtoll(arg + 14, nullptr, 10);
      if (cache_bytes < 0) {
        std::fprintf(stderr, "podsd: bad cache byte budget '%s'\n",
                     arg + 14);
        return 2;
      }
    } else if (std::strncmp(arg, "--reactor-threads=", 18) == 0) {
      const long v = std::strtol(arg + 18, nullptr, 10);
      if (v < 1 || v > 1024) {
        std::fprintf(stderr, "podsd: bad reactor thread count '%s'\n",
                     arg + 18);
        return 2;
      }
      options.reactor_threads = static_cast<int>(v);
    } else if (std::strcmp(arg, "--no-reactor") == 0) {
      options.use_reactor = false;
    } else if (std::strncmp(arg, "--memory-budget=", 16) == 0) {
      options.memory_budget = std::strtoll(arg + 16, nullptr, 10);
      if (options.memory_budget < 0) {
        std::fprintf(stderr, "podsd: bad memory budget '%s'\n", arg + 16);
        return 2;
      }
    } else if (std::strncmp(arg, "--max-pending=", 14) == 0) {
      options.max_pending = std::strtoll(arg + 14, nullptr, 10);
      if (options.max_pending < 0) {
        std::fprintf(stderr, "podsd: bad admission depth '%s'\n", arg + 14);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: podsd [--port=N] [--engine-threads=N] "
                   "[--no-task-graph] [--cache-bytes=N] "
                   "[--reactor-threads=N] [--no-reactor] "
                   "[--memory-budget=N] [--max-pending=N]\n");
      return 2;
    }
  }

  // Block the termination signals BEFORE starting threads so every thread
  // inherits the mask and sigwait below is the only consumer.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  provview::VerdictCacheConfig cache_config;
  if (cache_bytes > 0) cache_config.byte_budget = cache_bytes;
  provview::WorkflowRegistry registry(cache_config);
  registry.RegisterBuiltins();

  provview::PodsDaemon daemon(&registry, options);
  const provview::Status started = daemon.Start(port);
  if (!started.ok()) {
    std::fprintf(stderr, "podsd: %s\n", started.message().c_str());
    return 1;
  }

  std::printf("podsd listening on 127.0.0.1:%u\n", daemon.port());
  std::printf("workflows:");
  for (const std::string& name : registry.Names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  std::printf("podsd: caught signal %d, shutting down\n", sig);
  daemon.Stop();
  return 0;
}
