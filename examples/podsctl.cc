// podsctl — command-line client for a running podsd.
//
//   podsctl <port> ping
//   podsctl <port> stat
//   podsctl <port> certify <workflow> gamma=<G> hidden=<a,b,...>
//                  [deadline_ms=<N>] [budget=<bytes>]
//
// Exit status: 0 on an OK response, 1 on a transport error, 3 when the
// daemon answered with a typed error (the wire status is printed).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/client.h"
#include "server/protocol.h"

namespace {

using provview::CertifyRequest;
using provview::CertifyResponse;
using provview::PodsClient;
using provview::StatSnapshot;
using provview::Status;

int Usage() {
  std::fprintf(stderr,
               "usage: podsctl <port> ping\n"
               "       podsctl <port> stat\n"
               "       podsctl <port> certify <workflow> gamma=<G>"
               " hidden=<a,b,...> [deadline_ms=<N>] [budget=<bytes>]\n");
  return 2;
}

bool ParseList(const char* s, std::vector<uint32_t>* out) {
  while (*s != '\0') {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || v < 0) return false;
    out->push_back(static_cast<uint32_t>(v));
    if (*end == ',') {
      s = end + 1;
    } else if (*end == '\0') {
      s = end;
    } else {
      return false;
    }
  }
  return true;
}

int RunCertify(PodsClient& client, int argc, char** argv) {
  CertifyRequest req;
  req.workflow = argv[0];
  provview::CertifyItem item;
  bool have_gamma = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "gamma=", 6) == 0) {
      item.gamma = std::strtoll(arg + 6, nullptr, 10);
      have_gamma = true;
    } else if (std::strncmp(arg, "hidden=", 7) == 0) {
      if (!ParseList(arg + 7, &item.hidden_attrs)) return Usage();
    } else if (std::strncmp(arg, "deadline_ms=", 12) == 0) {
      req.deadline_ms = std::strtoll(arg + 12, nullptr, 10);
    } else if (std::strncmp(arg, "budget=", 7) == 0) {
      req.memory_budget = std::strtoll(arg + 7, nullptr, 10);
    } else {
      return Usage();
    }
  }
  if (!have_gamma) return Usage();
  req.items.push_back(std::move(item));

  CertifyResponse resp;
  const Status s = client.Certify(req, /*batch=*/false, &resp);
  if (!s.ok()) {
    std::fprintf(stderr, "certify: [%d] %s\n", static_cast<int>(s.code()),
                 s.message().c_str());
    return 3;
  }
  for (const provview::CertifyEntry& e : resp.entries) {
    std::printf("certified: %s\n", e.certified ? "yes" : "no");
    std::printf("module_gammas:");
    for (int64_t g : e.module_gammas) std::printf(" %lld", (long long)g);
    std::printf("\nrequired_privatizations:");
    for (uint32_t m : e.required_privatizations) std::printf(" %u", m);
    std::printf("\n");
  }
  std::printf("checker_calls: %llu\ncache_hits: %llu\n",
              (unsigned long long)resp.checker_calls,
              (unsigned long long)resp.cache_hits);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const long port = std::strtol(argv[1], nullptr, 10);
  if (port <= 0 || port > 65535) return Usage();

  PodsClient client;
  const Status connected = client.Connect(static_cast<uint16_t>(port));
  if (!connected.ok()) {
    std::fprintf(stderr, "podsctl: %s\n", connected.message().c_str());
    return 1;
  }

  const std::string cmd = argv[2];
  if (cmd == "ping") {
    const Status s = client.Ping();
    if (!s.ok()) {
      std::fprintf(stderr, "ping: %s\n", s.message().c_str());
      return 3;
    }
    std::printf("pong\n");
    return 0;
  }
  if (cmd == "stat") {
    StatSnapshot stats;
    const Status s = client.Stat(&stats);
    if (!s.ok()) {
      std::fprintf(stderr, "stat: %s\n", s.message().c_str());
      return 3;
    }
    for (const auto& [key, value] : stats) {
      std::printf("%-22s %llu\n", key.c_str(), (unsigned long long)value);
    }
    return 0;
  }
  if (cmd == "certify" && argc >= 4) {
    return RunCertify(client, argc - 3, argv + 3);
  }
  return Usage();
}
