// podsctl — command-line client for a running podsd, plus an offline
// solver front-end that needs no daemon at all.
//
//   podsctl <port> ping
//   podsctl <port> stat
//   podsctl <port> certify <workflow> gamma=<G> hidden=<a,b,...>
//                  [deadline_ms=<N>] [budget=<bytes>]
//   podsctl <port> register <name> <workflow-file>
//   podsctl <port> unregister <name>
//   podsctl dump <builtin> <out-file>
//   podsctl solve <instance-file> [solver=exact] [deadline_ms=<N>]
//                  [threads=<N>] [max_nodes=<N>]
//
// `register` uploads a SerializeWorkflowBinary file and binds it under
// <name>; the daemon certifies against it exactly as it would a compiled-in
// workflow. `dump` needs no daemon: it serializes one of the built-in
// workflow families (fig1, prop2-chain, one-one-chain, diamond,
// example7-chain) to a file — the fixed seeds make the bytes reproducible,
// so `dump` + `register` + `certify` answers match the built-in name.
//
// `solve` reads a serialized SecureViewInstance — the binary podsd payload
// codec, or the line-oriented text format when the file starts with
// "provview-instance" — runs the chosen solver (exact, brute, rounding,
// threshold, greedy, coverage) under a cooperative deadline, and prints the
// solution, its cost, and the proven optimality gap. A tripped deadline
// exits with the typed status AND the best feasible incumbent found.
//
// Exit status: 0 on an OK response, 1 on a transport/file error, 3 when
// the daemon (or solver) answered with a typed error.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/exec_control.h"
#include "secureview/serialization.h"
#include "secureview/solvers.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/registry.h"

namespace {

using provview::CertifyRequest;
using provview::CertifyResponse;
using provview::PodsClient;
using provview::StatSnapshot;
using provview::Status;

int Usage() {
  std::fprintf(stderr,
               "usage: podsctl <port> ping\n"
               "       podsctl <port> stat\n"
               "       podsctl <port> certify <workflow> gamma=<G>"
               " hidden=<a,b,...> [deadline_ms=<N>] [budget=<bytes>]\n"
               "       podsctl <port> register <name> <workflow-file>\n"
               "       podsctl <port> unregister <name>\n"
               "       podsctl dump <builtin> <out-file>\n"
               "       podsctl solve <instance-file> [solver=exact|brute|"
               "rounding|threshold|greedy|coverage]\n"
               "                     [deadline_ms=<N>] [threads=<N>]"
               " [max_nodes=<N>]\n");
  return 2;
}

int RunSolve(int argc, char** argv) {
  const char* path = argv[0];
  std::string solver = "exact";
  int64_t deadline_ms = 0;
  int threads = 1;
  int max_nodes = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "solver=", 7) == 0) {
      solver = arg + 7;
    } else if (std::strncmp(arg, "deadline_ms=", 12) == 0) {
      deadline_ms = std::strtoll(arg + 12, nullptr, 10);
    } else if (std::strncmp(arg, "threads=", 8) == 0) {
      threads = static_cast<int>(std::strtol(arg + 8, nullptr, 10));
    } else if (std::strncmp(arg, "max_nodes=", 10) == 0) {
      max_nodes = static_cast<int>(std::strtol(arg + 10, nullptr, 10));
    } else {
      return Usage();
    }
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "solve: cannot read %s\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();

  provview::Result<provview::SecureViewInstance> parsed =
      bytes.rfind("provview-instance", 0) == 0
          ? provview::ParseInstance(bytes)
          : provview::DeserializeInstanceBinary(bytes);
  if (!parsed.ok()) {
    std::fprintf(stderr, "solve: %s: %s\n", path,
                 parsed.status().message().c_str());
    return 1;
  }
  const provview::SecureViewInstance& inst = parsed.value();

  provview::ExecControl control;
  if (deadline_ms > 0) control.set_deadline_ms(deadline_ms);

  provview::SvResult result;
  if (solver == "exact") {
    provview::ExactOptions opt;
    if (deadline_ms > 0) opt.bnb.control = &control;
    if (threads > 1) opt.bnb.num_threads = threads;
    if (max_nodes > 0) opt.bnb.max_nodes = max_nodes;
    result = provview::SolveExact(inst, opt);
  } else if (solver == "brute") {
    result = provview::SolveBruteForce(
        inst, deadline_ms > 0 ? &control : nullptr);
  } else if (solver == "rounding") {
    provview::RoundingOptions opt;
    if (deadline_ms > 0) opt.control = &control;
    result = provview::SolveByLpRounding(inst, opt);
  } else if (solver == "threshold") {
    result = provview::SolveByThresholdRounding(inst);
  } else if (solver == "greedy") {
    result = provview::SolveGreedyPerModule(
        inst, deadline_ms > 0 ? &control : nullptr);
  } else if (solver == "coverage") {
    result = provview::SolveGreedyCoverage(
        inst, deadline_ms > 0 ? &control : nullptr);
  } else {
    return Usage();
  }

  std::printf("status: [%d] %s\n", static_cast<int>(result.status.code()),
              result.status.ok() ? "ok" : result.status.message().c_str());
  const bool have_solution =
      result.status.ok() || std::isfinite(result.gap);
  if (have_solution) {
    std::printf("solution: %s\n",
                provview::SerializeSolution(result.solution).c_str());
    std::printf("cost: %.6f\n", result.cost);
    std::printf("lower_bound: %.6f\n", result.lower_bound);
    std::printf("gap: %.6f\n", result.gap);
  }
  std::printf("work: %lld\n", static_cast<long long>(result.work));
  return result.status.ok() ? 0 : 3;
}

bool ParseList(const char* s, std::vector<uint32_t>* out) {
  while (*s != '\0') {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || v < 0) return false;
    out->push_back(static_cast<uint32_t>(v));
    if (*end == ',') {
      s = end + 1;
    } else if (*end == '\0') {
      s = end;
    } else {
      return false;
    }
  }
  return true;
}

int RunCertify(PodsClient& client, int argc, char** argv) {
  CertifyRequest req;
  req.workflow = argv[0];
  provview::CertifyItem item;
  bool have_gamma = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "gamma=", 6) == 0) {
      item.gamma = std::strtoll(arg + 6, nullptr, 10);
      have_gamma = true;
    } else if (std::strncmp(arg, "hidden=", 7) == 0) {
      if (!ParseList(arg + 7, &item.hidden_attrs)) return Usage();
    } else if (std::strncmp(arg, "deadline_ms=", 12) == 0) {
      req.deadline_ms = std::strtoll(arg + 12, nullptr, 10);
    } else if (std::strncmp(arg, "budget=", 7) == 0) {
      req.memory_budget = std::strtoll(arg + 7, nullptr, 10);
    } else {
      return Usage();
    }
  }
  if (!have_gamma) return Usage();
  req.items.push_back(std::move(item));

  CertifyResponse resp;
  const Status s = client.Certify(req, /*batch=*/false, &resp);
  if (!s.ok()) {
    std::fprintf(stderr, "certify: [%d] %s\n", static_cast<int>(s.code()),
                 s.message().c_str());
    return 3;
  }
  for (const provview::CertifyEntry& e : resp.entries) {
    std::printf("certified: %s\n", e.certified ? "yes" : "no");
    std::printf("module_gammas:");
    for (int64_t g : e.module_gammas) std::printf(" %lld", (long long)g);
    std::printf("\nrequired_privatizations:");
    for (uint32_t m : e.required_privatizations) std::printf(" %u", m);
    std::printf("\n");
  }
  std::printf("checker_calls: %llu\ncache_hits: %llu\n",
              (unsigned long long)resp.checker_calls,
              (unsigned long long)resp.cache_hits);
  return 0;
}

int RunDump(int argc, char** argv) {
  if (argc != 2) return Usage();
  const std::string name = argv[0];
  const char* path = argv[1];

  // The same fixed-seed families a daemon compiles in: serializing from
  // here and REGISTERing elsewhere reproduces the built-in byte for byte.
  provview::WorkflowRegistry registry;
  registry.RegisterBuiltins();
  const auto entry = registry.Find(name);
  if (entry == nullptr) {
    std::fprintf(stderr, "dump: unknown builtin '%s' (have:", name.c_str());
    for (const std::string& n : registry.Names()) {
      std::fprintf(stderr, " %s", n.c_str());
    }
    std::fprintf(stderr, ")\n");
    return 1;
  }
  std::string bytes;
  const Status s = provview::SerializeWorkflowBinary(*entry->workflow, &bytes);
  if (!s.ok()) {
    std::fprintf(stderr, "dump: %s\n", s.message().c_str());
    return 3;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "dump: cannot write %s\n", path);
    return 1;
  }
  std::printf("dumped %s: %zu bytes, %d attrs, %d modules\n", name.c_str(),
              bytes.size(), entry->workflow->num_attrs(),
              entry->workflow->num_modules());
  return 0;
}

int RunRegister(PodsClient& client, int argc, char** argv) {
  if (argc != 2) return Usage();
  const char* name = argv[0];
  const char* path = argv[1];
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "register: cannot read %s\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  provview::RegisterResponse resp;
  const Status s = client.Register(name, buf.str(), &resp);
  if (!s.ok()) {
    std::fprintf(stderr, "register: [%d] %s\n", static_cast<int>(s.code()),
                 s.message().c_str());
    return 3;
  }
  std::printf("registered %s: %u attrs, %u modules (%u private)\n", name,
              resp.num_attrs, resp.num_modules, resp.num_private_modules);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  if (std::strcmp(argv[1], "solve") == 0) {
    return RunSolve(argc - 2, argv + 2);  // offline: no port, no daemon
  }
  if (std::strcmp(argv[1], "dump") == 0) {
    return RunDump(argc - 2, argv + 2);  // offline: no port, no daemon
  }
  const long port = std::strtol(argv[1], nullptr, 10);
  if (port <= 0 || port > 65535) return Usage();

  PodsClient client;
  const Status connected = client.Connect(static_cast<uint16_t>(port));
  if (!connected.ok()) {
    std::fprintf(stderr, "podsctl: %s\n", connected.message().c_str());
    return 1;
  }

  const std::string cmd = argv[2];
  if (cmd == "ping") {
    const Status s = client.Ping();
    if (!s.ok()) {
      std::fprintf(stderr, "ping: %s\n", s.message().c_str());
      return 3;
    }
    std::printf("pong\n");
    return 0;
  }
  if (cmd == "stat") {
    StatSnapshot stats;
    const Status s = client.Stat(&stats);
    if (!s.ok()) {
      std::fprintf(stderr, "stat: %s\n", s.message().c_str());
      return 3;
    }
    for (const auto& [key, value] : stats) {
      std::printf("%-22s %llu\n", key.c_str(), (unsigned long long)value);
    }
    return 0;
  }
  if (cmd == "certify" && argc >= 4) {
    return RunCertify(client, argc - 3, argv + 3);
  }
  if (cmd == "register") {
    return RunRegister(client, argc - 3, argv + 3);
  }
  if (cmd == "unregister" && argc == 4) {
    const Status s = client.Unregister(argv[3]);
    if (!s.ok()) {
      std::fprintf(stderr, "unregister: [%d] %s\n", static_cast<int>(s.code()),
                   s.message().c_str());
      return 3;
    }
    std::printf("unregistered %s\n", argv[3]);
    return 0;
  }
  return Usage();
}
