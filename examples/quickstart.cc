// Quickstart: the paper's running example (Figure 1, Examples 1–5) end to
// end. Builds the three-module boolean workflow, materializes the
// provenance relation, inspects module m1's view privacy, and solves the
// workflow Secure-View problem.
//
// Run: ./quickstart
#include <iostream>

#include "common/table_printer.h"
#include "privacy/safe_subset_search.h"
#include "privacy/standalone_privacy.h"
#include "secureview/feasibility.h"
#include "secureview/from_workflow.h"
#include "secureview/solvers.h"
#include "workflow/fig1_workflow.h"

using namespace provview;

int main() {
  // ---- Build the Figure-1 workflow: m1, m2, m3 over attributes a1..a7.
  Fig1Workflow fig = MakeFig1Workflow();
  Workflow& w = *fig.workflow;
  std::cout << w.DebugString();

  // ---- Figure 1(b): the provenance relation R (one row per execution).
  PrintBanner("R: workflow executions (Figure 1b)");
  Relation prov = w.ProvenanceRelation();
  std::cout << prov.ToString();

  // ---- Figure 1(c): module m1's standalone relation R1.
  const Module& m1 = w.module(fig.m1_index);
  Relation r1 = m1.FullRelation();
  PrintBanner("R1: functionality of m1 (Figure 1c)");
  std::cout << r1.ToString();

  // ---- Figure 1(d): the view R_V for V = {a1, a3, a5}.
  Bitset64 visible = Bitset64::Of(7, {fig.a1, fig.a3, fig.a5});
  PrintBanner("R_V = pi_V(R1) for V = {a1, a3, a5} (Figure 1d)");
  std::cout << r1.ProjectSet(visible).ToString();

  // ---- Example 3: V = {a1, a3, a5} is safe for m1 and Gamma = 4.
  PrintBanner("Standalone privacy of m1 (Example 3)");
  std::cout << "Gamma(V = {a1,a3,a5})   = "
            << MaxStandaloneGamma(m1, visible) << "  (paper: 4)\n";
  Bitset64 inputs_hidden = Bitset64::Of(7, {fig.a3, fig.a4, fig.a5});
  std::cout << "Gamma(V = {a3,a4,a5})   = "
            << MaxStandaloneGamma(m1, inputs_hidden)
            << "  (paper: only 3 — hiding inputs alone is weaker)\n";
  std::cout << "OUT for x = (0,0) under V = {a1,a3,a5}:\n";
  for (const Tuple& y :
       OutSet(r1, m1.inputs(), m1.outputs(), visible, {0, 0})) {
    std::cout << "  (a3,a4,a5) = (" << y[0] << "," << y[1] << "," << y[2]
              << ")\n";
  }

  // ---- Standalone Secure-View (Section 3): cheapest safe hidden subset.
  PrintBanner("Standalone Secure-View for m1, Gamma = 4");
  MinCostSafeResult best = MinCostSafeHiddenSet(m1, 4);
  std::cout << "min-cost hidden subset: " << best.hidden.ToString()
            << "  cost = " << best.cost << " (" << best.stats.checker_calls
            << " safety checks)\n";
  std::cout << "all minimal safe hidden subsets:\n";
  for (const Bitset64& h : MinimalSafeHiddenSets(m1, 4)) {
    std::cout << "  " << h.ToString() << "\n";
  }

  // ---- Workflow Secure-View (Section 4): all three modules private,
  //      Gamma = 2, set constraints derived from functionality.
  PrintBanner("Workflow Secure-View, all-private, Gamma = 2");
  SecureViewInstance inst = InstanceFromWorkflow(w, 2, ConstraintKind::kSet);
  SvResult exact = SolveExact(inst);
  SvResult greedy = SolveGreedyPerModule(inst);
  std::cout << "exact optimum:      hide " << exact.solution.hidden.ToString()
            << "  cost = " << exact.cost << "\n";
  std::cout << "per-module greedy:  hide " << greedy.solution.hidden.ToString()
            << "  cost = " << greedy.cost << "\n";
  std::cout << "Theorem 4 certificate: "
            << (VerifySolutionSemantics(w, exact.solution, 2) ? "PASS"
                                                              : "FAIL")
            << "\n";
  return 0;
}
