// Privacy/utility audit: given an executable workflow, sweep the privacy
// target Γ and report the cheapest provenance view at each level — the
// utility price of privacy. Also reports which attributes enter the view
// as Γ grows (they only ever grow, by Proposition 1 monotonicity).
//
// Run: ./privacy_audit
#include <iostream>

#include "common/table_printer.h"
#include "generators/random_workflow.h"
#include "privacy/safe_subset_search.h"
#include "secureview/from_workflow.h"
#include "secureview/provenance_view.h"
#include "secureview/solvers.h"
#include "workflow/dot_export.h"

using namespace provview;

int main() {
  Rng rng(4242);
  RandomWorkflowOptions opt;
  opt.num_modules = 6;
  opt.min_inputs = 1;
  opt.max_inputs = 3;
  opt.min_outputs = 2;  // >= 2 boolean outputs so Gamma up to 4 is feasible
  opt.max_outputs = 2;
  opt.gamma_bound = 2;
  opt.min_cost = 1.0;
  opt.max_cost = 9.0;
  GeneratedWorkflow gen = MakeRandomWorkflow(opt, &rng);
  Workflow& w = *gen.workflow;
  std::cout << w.DebugString();

  double total_cost = 0.0;
  for (AttrId a = 0; a < gen.catalog->size(); ++a) {
    total_cost += gen.catalog->Cost(a);
  }

  PrintBanner("Privacy/utility tradeoff (exact optimum per Gamma)");
  TablePrinter table(
      {"Gamma", "hidden attrs", "hidden cost", "% of total utility",
       "certified"});
  for (int64_t gamma : {1, 2, 4}) {
    SecureViewInstance inst =
        InstanceFromWorkflow(w, gamma, ConstraintKind::kSet);
    SvResult exact = SolveExact(inst);
    PV_CHECK_MSG(exact.status.ok(), exact.status.ToString());
    table.NewRow()
        .AddCell(gamma)
        .AddCell(exact.solution.hidden.count())
        .AddCell(exact.cost, 2)
        .AddCell(100.0 * exact.cost / total_cost, 1)
        .AddCell(VerifySolutionSemantics(w, exact.solution, gamma) ? "yes"
                                                                   : "NO");
  }
  table.Print();

  PrintBanner("Per-module standalone price (Gamma = 4)");
  TablePrinter mtable({"module", "cheapest safe hidden subset", "cost"});
  for (int i : w.PrivateModuleIndices()) {
    MinCostSafeResult r = MinCostSafeHiddenSet(w.module(i), 4);
    mtable.NewRow()
        .AddCell(w.module(i).name())
        .AddCell(r.found ? r.hidden.ToString() : "(unreachable)")
        .AddCell(r.found ? r.cost : -1.0, 2);
  }
  mtable.Print();

  // Render the Γ = 2 optimum as a shippable view + Graphviz diagram.
  SecureViewInstance inst = InstanceFromWorkflow(w, 2, ConstraintKind::kSet);
  SvResult exact = SolveExact(inst);
  PV_CHECK(exact.status.ok());
  ProvenanceView view(&w, exact.solution);
  PrintBanner("Published view summary (Gamma = 2)");
  std::cout << "visible columns: " << view.VisibleAttrs().size() << " of "
            << w.used_attrs().count() << "; lost utility "
            << view.LostUtility() << "\n";
  for (AttrId a : view.VisibleAttrs()) {
    std::cout << "  " << gen.catalog->Name(a) << " <- "
              << view.ProducerDisplayName(a) << "\n";
  }

  PrintBanner("Graphviz export (hidden data dashed)");
  DotOptions dot_options;
  dot_options.hidden = exact.solution.hidden;
  dot_options.privatized = exact.solution.privatized;
  dot_options.graph_name = "audit";
  std::cout << ToDot(w, dot_options);
  return 0;
}
