// svtool — command-line Secure-View solver over the text instance format
// (see secureview/serialization.h). Reads an instance from a file or
// stdin, solves it with the requested algorithm, and prints the solution
// line plus a cost summary.
//
// Usage:
//   svtool <exact|lp|threshold|greedy|coverage> [instance-file]
//   svtool demo            # prints a sample instance to adapt
//
// Example:
//   ./svtool demo > inst.txt
//   ./svtool exact inst.txt
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "generators/requirement_gen.h"
#include "secureview/feasibility.h"
#include "secureview/serialization.h"
#include "secureview/solvers.h"

using namespace provview;

namespace {

int Usage() {
  std::cerr
      << "usage: svtool <exact|lp|threshold|greedy|coverage> [instance-file]\n"
      << "       svtool demo\n"
      << "Reads a provview-instance (v1) from the file or stdin and prints\n"
      << "the chosen solver's hidden-attribute / privatization solution.\n";
  return 2;
}

std::string ReadAll(std::istream& in) {
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string mode = argv[1];

  if (mode == "demo") {
    Rng rng(1);
    RandomInstanceOptions opt;
    opt.kind = ConstraintKind::kCardinality;
    opt.num_modules = 6;
    opt.public_fraction = 0.2;
    std::cout << SerializeInstance(MakeRandomInstance(opt, &rng));
    return 0;
  }

  std::string text;
  if (argc >= 3) {
    std::ifstream file(argv[2]);
    if (!file) {
      std::cerr << "svtool: cannot open " << argv[2] << "\n";
      return 1;
    }
    text = ReadAll(file);
  } else {
    text = ReadAll(std::cin);
  }

  Result<SecureViewInstance> parsed = ParseInstance(text);
  if (!parsed.ok()) {
    std::cerr << "svtool: parse error: " << parsed.status() << "\n";
    return 1;
  }
  const SecureViewInstance& inst = *parsed;

  SvResult result;
  if (mode == "exact") {
    result = SolveExact(inst);
  } else if (mode == "lp") {
    result = SolveByLpRounding(inst);
  } else if (mode == "threshold") {
    if (inst.kind != ConstraintKind::kSet) {
      std::cerr << "svtool: threshold rounding needs a set-constraint "
                   "instance\n";
      return 1;
    }
    result = SolveByThresholdRounding(inst);
  } else if (mode == "greedy") {
    result = SolveGreedyPerModule(inst);
  } else if (mode == "coverage") {
    result = SolveGreedyCoverage(inst);
  } else {
    return Usage();
  }

  if (!result.status.ok() &&
      result.status.code() != StatusCode::kTimeout) {
    std::cerr << "svtool: solver failed: " << result.status << "\n";
    return 1;
  }
  std::cout << SerializeSolution(result.solution) << "\n";
  std::cout << "# cost " << result.cost << " (attrs "
            << result.solution.AttrCost(inst) << " + privatization "
            << result.solution.PrivatizationCost(inst) << ")";
  if (result.lower_bound > 0) {
    std::cout << ", lower bound " << result.lower_bound;
  }
  std::cout << ", feasible "
            << (IsFeasible(inst, result.solution) ? "yes" : "NO") << "\n";
  return 0;
}
