// Financial clearing scenario: a mid-size workflow of proprietary pricing
// and netting modules with shared market-data feeds (high data sharing),
// specified directly through cardinality requirement lists (§4.2) — the
// form an operator would write down without revealing module internals.
// Compares the paper's LP-rounding algorithm (Theorem 5) against the exact
// ILP and the greedy baselines.
//
// Run: ./financial_clearing
#include <iostream>

#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "generators/requirement_gen.h"
#include "secureview/feasibility.h"
#include "secureview/solvers.h"

using namespace provview;

int main() {
  Rng rng(777);
  RandomInstanceOptions opt;
  opt.kind = ConstraintKind::kCardinality;
  opt.num_modules = 14;      // pricing, netting, margining, reporting...
  opt.min_inputs = 2;
  opt.max_inputs = 4;
  opt.min_outputs = 1;
  opt.max_outputs = 2;
  opt.gamma_bound = 4;       // market data feeds are widely shared
  opt.reuse_probability = 0.7;
  opt.min_list_length = 1;
  opt.max_list_length = 3;
  opt.min_cost = 1.0;
  opt.max_cost = 12.0;       // downstream reports are the most valuable
  SecureViewInstance inst = MakeRandomInstance(opt, &rng);

  std::cout << "Clearing workflow: " << inst.num_modules() << " modules, "
            << inst.num_attrs << " data items, data sharing degree "
            << inst.DataSharingDegree() << ", l_max = " << inst.MaxListLength()
            << "\n";

  PrintBanner("Secure-View solver comparison (cardinality constraints)");
  TablePrinter table({"solver", "cost", "vs LP bound", "time (ms)", "work"});
  double lp_bound = 0.0;

  auto run = [&](const std::string& name, auto solver) {
    Stopwatch sw;
    SvResult r = solver();
    double ms = sw.ElapsedMillis();
    PV_CHECK_MSG(r.status.ok(), r.status.ToString());
    PV_CHECK(IsFeasible(inst, r.solution));
    if (r.lower_bound > lp_bound) lp_bound = r.lower_bound;
    table.NewRow()
        .AddCell(name)
        .AddCell(r.cost, 2)
        .AddCell(lp_bound > 0 ? r.cost / lp_bound : 0.0, 3)
        .AddCell(ms, 1)
        .AddCell(r.work);
    return r;
  };

  RoundingOptions ro;
  ro.seed = 99;
  SvResult lp = run("LP rounding (Alg 1)", [&] { return SolveByLpRounding(inst, ro); });
  run("greedy per-module", [&] { return SolveGreedyPerModule(inst); });
  run("greedy coverage", [&] { return SolveGreedyCoverage(inst); });
  SvResult exact = run("exact ILP", [&] { return SolveExact(inst); });
  table.Print();

  std::cout << "\nLP lower bound = " << lp.lower_bound
            << "; exact optimum = " << exact.cost
            << "; LP-rounding ratio vs OPT = " << lp.cost / exact.cost
            << " (Theorem 5 guarantees O(log n))\n";

  PrintBanner("Chosen minimum-cost view");
  std::cout << "hide " << exact.solution.hidden.count() << " of "
            << inst.num_attrs << " data items: "
            << exact.solution.hidden.ToString() << "\n";
  return 0;
}
