// Experiment E6 — Theorem 6: set constraints. The LP (15)-(17) rounded at
// threshold 1/ℓ_max is an ℓ_max-approximation, and the problem family gets
// harder as ℓ_max grows (it encodes label cover; see E9 for the hardness
// side). We sweep ℓ_max and report the measured rounding ratio against the
// exact ILP and against the proven ℓ_max budget.
#include <iostream>

#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "generators/random_workflow.h"
#include "generators/requirement_gen.h"
#include "privacy/safe_subset_search.h"
#include "secureview/feasibility.h"
#include "secureview/from_workflow.h"
#include "secureview/solvers.h"

using namespace provview;

namespace {

// The set-constraint lists L_i are not synthetic: for executable workflows
// they come from MinimalSafeHiddenSets over each module's functionality —
// exactly the search the memoized Algorithm-2 checker accelerates. Measure
// that pipeline end to end before benchmarking the LP rounding.
void ListDerivationTable() {
  PrintBanner(
      "E6a: deriving set-constraint lists L_i from module functionality");
  TablePrinter t({"modules", "gamma", "seed", "total options", "checker calls",
                  "cache hits", "derive ms"});
  for (int num_modules : {4, 8, 12}) {
    for (uint64_t seed = 0; seed < 2; ++seed) {
      Rng rng(1000 + seed);
      RandomWorkflowOptions opt;
      opt.num_modules = num_modules;
      opt.max_inputs = 3;
      opt.max_outputs = 2;
      GeneratedWorkflow gen = MakeRandomWorkflow(opt, &rng);

      const int64_t gamma = 2;
      Stopwatch sw;
      SecureViewInstance inst =
          InstanceFromWorkflow(*gen.workflow, gamma, ConstraintKind::kSet);
      double derive_ms = sw.ElapsedMillis();

      // Re-run the per-module searches just for the instrumentation.
      SafeSearchStats total;
      int64_t options = 0;
      for (int i = 0; i < gen.workflow->num_modules(); ++i) {
        SafeSearchStats stats;
        options += static_cast<int64_t>(
            MinimalSafeHiddenSets(gen.workflow->module(i), gamma, &stats)
                .size());
        total.subsets_examined += stats.subsets_examined;
        total.checker_calls += stats.checker_calls;
        total.cache_hits += stats.cache_hits;
      }
      t.NewRow()
          .AddCell(num_modules)
          .AddCell(gamma)
          .AddCell(static_cast<int64_t>(seed))
          .AddCell(options)
          .AddCell(total.checker_calls)
          .AddCell(total.cache_hits)
          .AddCell(derive_ms, 2);
    }
  }
  t.Print();
}

}  // namespace

int main() {
  ListDerivationTable();
  PrintBanner("E6: threshold rounding for set constraints (Theorem 6)");
  TablePrinter t({"l_max target", "seed", "l_max actual", "OPT", "LP bound",
                  "rounded", "rounded/OPT", "budget l_max",
                  "integrality OPT/LP"});
  double worst = 0.0;
  for (int lmax : {1, 2, 3, 4, 6}) {
    for (int seed = 0; seed < 3; ++seed) {
      Rng rng(static_cast<uint64_t>(lmax) * 100 + static_cast<uint64_t>(seed));
      RandomInstanceOptions opt;
      opt.kind = ConstraintKind::kSet;
      opt.num_modules = 12;
      opt.max_inputs = 4;
      opt.max_outputs = 2;
      opt.gamma_bound = 3;
      opt.min_list_length = lmax;
      opt.max_list_length = lmax;
      opt.min_option_size = 1;
      opt.max_option_size = 3;
      SecureViewInstance inst = MakeRandomInstance(opt, &rng);

      SvResult exact = SolveExact(inst);
      PV_CHECK_MSG(exact.status.ok(), exact.status.ToString());
      SvResult rounded = SolveByThresholdRounding(inst);
      PV_CHECK(rounded.status.ok());
      PV_CHECK(IsFeasible(inst, rounded.solution));

      double ratio = rounded.cost / exact.cost;
      worst = std::max(worst, ratio);
      // Theorem 6's guarantee.
      PV_CHECK_MSG(ratio <= inst.MaxListLength() + 1e-6,
                   "l_max guarantee violated");
      t.NewRow()
          .AddCell(lmax)
          .AddCell(seed)
          .AddCell(inst.MaxListLength())
          .AddCell(exact.cost, 2)
          .AddCell(rounded.lower_bound, 2)
          .AddCell(rounded.cost, 2)
          .AddCell(ratio, 3)
          .AddCell(inst.MaxListLength())
          .AddCell(exact.cost / std::max(rounded.lower_bound, 1e-9), 3);
    }
  }
  t.Print();
  std::cout << "  worst rounded/OPT = " << worst
            << " <= l_max in every row (Theorem 6's guarantee).\n";
  return 0;
}
