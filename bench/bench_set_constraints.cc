// Experiment E6 — Theorem 6: set constraints. The LP (15)-(17) rounded at
// threshold 1/ℓ_max is an ℓ_max-approximation, and the problem family gets
// harder as ℓ_max grows (it encodes label cover; see E9 for the hardness
// side). We sweep ℓ_max and report the measured rounding ratio against the
// exact ILP and against the proven ℓ_max budget.
#include <iostream>

#include "common/table_printer.h"
#include "generators/requirement_gen.h"
#include "secureview/feasibility.h"
#include "secureview/solvers.h"

using namespace provview;

int main() {
  PrintBanner("E6: threshold rounding for set constraints (Theorem 6)");
  TablePrinter t({"l_max target", "seed", "l_max actual", "OPT", "LP bound",
                  "rounded", "rounded/OPT", "budget l_max",
                  "integrality OPT/LP"});
  double worst = 0.0;
  for (int lmax : {1, 2, 3, 4, 6}) {
    for (int seed = 0; seed < 3; ++seed) {
      Rng rng(static_cast<uint64_t>(lmax) * 100 + static_cast<uint64_t>(seed));
      RandomInstanceOptions opt;
      opt.kind = ConstraintKind::kSet;
      opt.num_modules = 12;
      opt.max_inputs = 4;
      opt.max_outputs = 2;
      opt.gamma_bound = 3;
      opt.min_list_length = lmax;
      opt.max_list_length = lmax;
      opt.min_option_size = 1;
      opt.max_option_size = 3;
      SecureViewInstance inst = MakeRandomInstance(opt, &rng);

      SvResult exact = SolveExact(inst);
      PV_CHECK_MSG(exact.status.ok(), exact.status.ToString());
      SvResult rounded = SolveByThresholdRounding(inst);
      PV_CHECK(rounded.status.ok());
      PV_CHECK(IsFeasible(inst, rounded.solution));

      double ratio = rounded.cost / exact.cost;
      worst = std::max(worst, ratio);
      // Theorem 6's guarantee.
      PV_CHECK_MSG(ratio <= inst.MaxListLength() + 1e-6,
                   "l_max guarantee violated");
      t.NewRow()
          .AddCell(lmax)
          .AddCell(seed)
          .AddCell(inst.MaxListLength())
          .AddCell(exact.cost, 2)
          .AddCell(rounded.lower_bound, 2)
          .AddCell(rounded.cost, 2)
          .AddCell(ratio, 3)
          .AddCell(inst.MaxListLength())
          .AddCell(exact.cost / std::max(rounded.lower_bound, 1e-9), 3);
    }
  }
  t.Print();
  std::cout << "  worst rounded/OPT = " << worst
            << " <= l_max in every row (Theorem 6's guarantee).\n";
  return 0;
}
