// Experiment E2 — standalone Secure-View complexity (Section 3).
//
// Reproduces, as measured scaling laws, the paper's complexity landscape:
//   - Theorem 1: deciding safety requires reading Θ(N) rows — we count
//     data-supplier calls while materializing the relation;
//   - §3.2: the Algorithm-2 safety check runs in poly(N) after the
//     relation is read (our implementation: one pass + grouping);
//   - Theorem 3 / §3.2: minimum-cost search enumerates 2^k subsets — the
//     measured checker-call count grows exponentially in k (with the
//     Proposition-1 dominance pruning visible as a constant-factor saver).
//
// Implemented with google-benchmark (wall-clock) plus a closing table of
// search statistics.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/combinatorics.h"
#include "common/table_printer.h"
#include "module/module_library.h"
#include "module/table_module.h"
#include "privacy/lower_bounds.h"
#include "privacy/possible_worlds.h"
#include "privacy/safe_subset_search.h"
#include "privacy/standalone_privacy.h"

namespace provview {
namespace {

// A random module with ki boolean inputs and ko boolean outputs.
struct BenchModule {
  CatalogPtr catalog;
  ModulePtr module;
  Relation relation;
};

BenchModule MakeBenchModule(int ki, int ko, uint64_t seed) {
  BenchModule bm;
  bm.catalog = std::make_shared<AttributeCatalog>();
  std::vector<AttrId> in, out;
  for (int i = 0; i < ki; ++i) in.push_back(bm.catalog->Add("i" + std::to_string(i)));
  for (int o = 0; o < ko; ++o) out.push_back(bm.catalog->Add("o" + std::to_string(o)));
  Rng rng(seed);
  bm.module = MakeRandomFunction("m", bm.catalog, in, out, &rng);
  bm.relation = bm.module->FullRelation();
  return bm;
}

// --- Algorithm-2 safety check: time vs relation size N = 2^{ki}. ---
void BM_Algorithm2Check(benchmark::State& state) {
  const int ki = static_cast<int>(state.range(0));
  BenchModule bm = MakeBenchModule(ki, 3, 42);
  Bitset64 visible = Bitset64::All(bm.catalog->size());
  visible.Reset(ki);      // hide one output
  visible.Reset(0);       // and one input
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsStandaloneSafe(
        bm.relation, bm.module->inputs(), bm.module->outputs(), visible, 2));
  }
  state.SetComplexityN(int64_t{1} << ki);
  state.counters["N_rows"] = static_cast<double>(int64_t{1} << ki);
}
BENCHMARK(BM_Algorithm2Check)->DenseRange(4, 12, 2)->Complexity();

// --- Min-cost subset search: time vs k = |I| + |O| (exponential). ---
void BM_MinCostSearch(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int ki = k / 2;
  BenchModule bm = MakeBenchModule(ki, k - ki, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinCostSafeHiddenSet(
        bm.relation, bm.module->inputs(), bm.module->outputs(), 2));
  }
  state.counters["k"] = k;
}
BENCHMARK(BM_MinCostSearch)->DenseRange(4, 12, 2);

// --- Brute-force world walk: naive |Range|^N odometer vs pruned engine. ---
// Same module and view; the pruned/interned walk visits ∏|feasible_i|
// candidates with O(1) incremental updates instead of |Range|^N set
// comparisons. The Γ short-circuit is off so both do the full count.
void BM_WorldWalkNaive(benchmark::State& state) {
  const int ki = static_cast<int>(state.range(0));
  BenchModule bm = MakeBenchModule(ki, 2, 42);
  Bitset64 visible = Bitset64::All(bm.catalog->size());
  visible.Reset(0);
  visible.Reset(ki);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnumerateStandaloneWorldsNaive(
        bm.relation, bm.module->inputs(), bm.module->outputs(), visible,
        int64_t{1} << 32));
  }
}
BENCHMARK(BM_WorldWalkNaive)->DenseRange(2, 3, 1)
    ->Unit(benchmark::kMillisecond);

void BM_WorldWalkPruned(benchmark::State& state) {
  const int ki = static_cast<int>(state.range(0));
  BenchModule bm = MakeBenchModule(ki, 2, 42);
  Bitset64 visible = Bitset64::All(bm.catalog->size());
  visible.Reset(0);
  visible.Reset(ki);
  EnumerationOptions opts;
  opts.max_candidates = int64_t{1} << 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnumerateStandaloneWorlds(
        bm.relation, bm.module->inputs(), bm.module->outputs(), visible,
        opts));
  }
}
BENCHMARK(BM_WorldWalkPruned)->DenseRange(2, 3, 1)
    ->Unit(benchmark::kMillisecond);

// --- Γ short-circuit: safety verdict without the full walk. ---
void BM_BruteSafetyShortCircuit(benchmark::State& state) {
  const int ki = static_cast<int>(state.range(0));
  BenchModule bm = MakeBenchModule(ki, 2, 42);
  Bitset64 visible = Bitset64::All(bm.catalog->size());
  visible.Reset(0);
  visible.Reset(ki);
  EnumerationOptions opts;
  opts.max_candidates = int64_t{1} << 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsStandaloneSafeByEnumeration(
        bm.relation, bm.module->inputs(), bm.module->outputs(), visible, 2,
        opts));
  }
}
BENCHMARK(BM_BruteSafetyShortCircuit)->DenseRange(2, 3, 1)
    ->Unit(benchmark::kMillisecond);

// --- Cardinality-frontier computation (the §4.2 list builder). ---
void BM_CardinalityFrontier(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int ki = k / 2;
  BenchModule bm = MakeBenchModule(ki, k - ki, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinimalSafeCardinalityPairs(
        bm.relation, bm.module->inputs(), bm.module->outputs(), 2));
  }
}
BENCHMARK(BM_CardinalityFrontier)->DenseRange(4, 10, 2);

// Closing tables: Theorem-1 supplier reads and Theorem-3 subset blowup.
void PrintScalingTables() {
  PrintBanner("E2a: Theorem 1 — data-supplier calls to materialize R");
  TablePrinter t1({"|I|", "N = 2^|I|", "supplier calls", "calls / N"});
  for (int ki = 4; ki <= 12; ki += 2) {
    auto catalog = std::make_shared<AttributeCatalog>();
    std::vector<AttrId> in, out;
    for (int i = 0; i < ki; ++i) in.push_back(catalog->Add("i" + std::to_string(i)));
    out.push_back(catalog->Add("o0"));
    Rng rng(3);
    ModulePtr base = MakeRandomFunction("m", catalog, in, out, &rng);
    ModulePtr table = TableModule::Materialize(*base);
    auto* tm = static_cast<TableModule*>(table.get());
    tm->ResetSupplierCalls();
    Relation rel = tm->FullRelation();  // the "read everything" step
    t1.NewRow()
        .AddCell(ki)
        .AddCell(int64_t{1} << ki)
        .AddCell(tm->supplier_calls())
        .AddCell(static_cast<double>(tm->supplier_calls()) /
                     static_cast<double>(int64_t{1} << ki),
                 2);
  }
  t1.Print();

  PrintBanner(
      "E2b: Theorem 3 / §3.2 — subset-search volume grows as 2^k");
  TablePrinter t2({"k", "subsets 2^k", "examined", "checker calls",
                   "cache hits", "skipped (%)"});
  for (int k = 4; k <= 14; k += 2) {
    const int ki = k / 2;
    BenchModule bm = MakeBenchModule(ki, k - ki, 13);
    SafeSearchStats stats;
    MinimalSafeHiddenSets(bm.relation, bm.module->inputs(),
                          bm.module->outputs(), 2, &stats);
    t2.NewRow()
        .AddCell(k)
        .AddCell(int64_t{1} << k)
        .AddCell(stats.subsets_examined)
        .AddCell(stats.checker_calls)
        .AddCell(stats.cache_hits)
        .AddCell(100.0 *
                     (1.0 - static_cast<double>(stats.checker_calls) /
                                static_cast<double>(stats.subsets_examined)),
                 1);
  }
  t2.Print();
  std::cout << "  (skipped = Prop.-1 dominance pruning + memo cache; random "
               "boolean modules have no redundant attributes, so hits "
               "concentrate in E2e's redundant-schema workload.)\n";

  // --- Memo cache on redundant schemas: distinct hidden sets, one verdict. ---
  PrintBanner(
      "E2e: safety-memo canonicalization — redundant attribute schemas");
  TablePrinter t5({"redundant attrs", "k", "examined", "checker calls",
                   "sig hits", "proj hits", "hit rate (%)"});
  for (int redundant = 0; redundant <= 4; redundant += 2) {
    auto catalog = std::make_shared<AttributeCatalog>();
    std::vector<AttrId> in, out;
    in.push_back(catalog->Add("i0"));
    in.push_back(catalog->Add("i1"));
    // Domain-1 inputs: real schemas carry flags and metadata columns that
    // cannot distinguish worlds; the signature level collapses every hidden
    // set that differs only in them.
    for (int r = 0; r < redundant / 2; ++r) {
      in.push_back(catalog->Add("pad" + std::to_string(r), 1));
    }
    out.push_back(catalog->Add("o0"));
    out.push_back(catalog->Add("o1"));
    // Duplicated outputs (mirrors of o0): visible sets exchanging o0 for a
    // mirror induce the *same* projection, which only the level-2
    // projection-hash canonicalization can collapse.
    for (int r = 0; r < redundant / 2; ++r) {
      out.push_back(catalog->Add("dup" + std::to_string(r)));
    }
    auto module = std::make_unique<LambdaModule>(
        "m", catalog, in, out, [in, out](const Tuple& x) {
          Tuple y(out.size(), 0);
          y[0] = x[0] ^ x[1];
          y[1] = x[0] & x[1];
          for (size_t j = 2; j < out.size(); ++j) y[j] = y[0];
          return y;
        });
    Relation rel = module->FullRelation();
    SafeSearchStats stats;
    MinimalSafeHiddenSets(rel, module->inputs(), module->outputs(), 2,
                          &stats);
    t5.NewRow()
        .AddCell(redundant)
        .AddCell(static_cast<int64_t>(in.size() + out.size()))
        .AddCell(stats.subsets_examined)
        .AddCell(stats.checker_calls)
        .AddCell(stats.signature_hits)
        .AddCell(stats.projection_hits)
        .AddCell(100.0 * stats.HitRate(), 1);
  }
  t5.Print();
  std::cout << "  (every added redundant attribute doubles the subset space "
               "but not the number of distinct Algorithm-2 evaluations; "
               "'proj hits' are collapses the per-attribute signature alone "
               "could not see.)\n";

  // --- Appendix-A gadgets checked against Algorithm 2. ---
  PrintBanner("E2c: Theorem-1 set-disjointness gadget (safety <=> A∩B ≠ ∅)");
  TablePrinter t3({"universe N", "|A|", "|B|", "intersect", "safe (Alg 2)",
                   "agree"});
  Rng rng(17);
  for (int universe : {4, 8, 16, 32}) {
    for (int trial = 0; trial < 2; ++trial) {
      std::vector<int> a, b;
      for (int i = 0; i < universe; ++i) {
        if (rng.NextBernoulli(0.3)) a.push_back(i);
        if (rng.NextBernoulli(0.3)) b.push_back(i);
      }
      bool intersect = false;
      for (int i : a) {
        if (std::find(b.begin(), b.end(), i) != b.end()) intersect = true;
      }
      DisjointnessGadget g = MakeDisjointnessGadget(universe, a, b);
      bool safe = IsStandaloneSafe(g.relation, g.module->inputs(),
                                   g.module->outputs(), g.view, 2);
      t3.NewRow()
          .AddCell(universe)
          .AddCell(static_cast<int64_t>(a.size()))
          .AddCell(static_cast<int64_t>(b.size()))
          .AddCell(intersect ? "yes" : "no")
          .AddCell(safe ? "yes" : "no")
          .AddCell(safe == intersect ? "yes" : "NO");
    }
  }
  t3.Print();

  PrintBanner(
      "E2d: Theorem-3 adversary pair (l=8, A={0..3}) — safe visible sets");
  TablePrinter t4({"|V|", "safe for m1", "safe for m2", "subsets of A",
                   "note"});
  AdversaryPair pair = MakeAdversaryPair(8, {0, 1, 2, 3});
  for (int size = 0; size <= 4; ++size) {
    int safe1 = 0, safe2 = 0, in_a = 0;
    Bitset64 a_set = Bitset64::Of(8, pair.special_set);
    for (const Bitset64& combo : SubsetsOfSize(8, size)) {
      if (AdversaryVisibleInputsSafe(*pair.m1, combo.ToVector())) ++safe1;
      if (AdversaryVisibleInputsSafe(*pair.m2, combo.ToVector())) ++safe2;
      if (combo.IsSubsetOf(a_set)) ++in_a;
    }
    t4.NewRow()
        .AddCell(size)
        .AddCell(safe1)
        .AddCell(safe2)
        .AddCell(in_a)
        .AddCell(size < 2 ? "(P1): all safe"
                          : "(P2): m1 none; m2 exactly the subsets of A");
  }
  t4.Print();
  std::cout << "  (m2's extra safe sets are invisible to any algorithm "
               "probing fewer than ~C(l, l/2)/C(3l/4, l/4) subsets — the "
               "2^Ω(k) oracle lower bound of Theorem 3.)\n";
}

}  // namespace
}  // namespace provview

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  provview::PrintScalingTables();
  return 0;
}
