// Experiment E11 — performance envelope of the LP/ILP substrate (S6) that
// Theorems 5/6 and Appendix C.4 rely on: two-phase dense simplex and
// branch-and-bound, on randomly generated covering programs shaped like
// the Secure-View encodings.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "lp/branch_and_bound.h"
#include "secureview/ilp_encoding.h"
#include "generators/requirement_gen.h"

namespace provview {
namespace {

LinearProgram RandomCoveringLp(int num_vars, int num_rows, uint64_t seed) {
  Rng rng(seed);
  LinearProgram lp;
  for (int v = 0; v < num_vars; ++v) {
    lp.AddUnitVariable(1.0 + rng.NextDouble() * 9.0);
  }
  for (int c = 0; c < num_rows; ++c) {
    std::vector<std::pair<int, double>> terms;
    int nnz = 2 + static_cast<int>(rng.NextBelow(4));
    for (int j : rng.SampleWithoutReplacement(num_vars, nnz)) {
      terms.emplace_back(j, 1.0);
    }
    lp.AddConstraint(std::move(terms), ConstraintSense::kGe, 1.0);
  }
  return lp;
}

void BM_SimplexCoveringLp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  LinearProgram lp = RandomCoveringLp(n, n, 5);
  for (auto _ : state) {
    LpSolution s = SolveLp(lp);
    benchmark::DoNotOptimize(s.objective);
  }
  state.counters["vars"] = n;
}
BENCHMARK(BM_SimplexCoveringLp)->RangeMultiplier(2)->Range(16, 256);

void BM_BranchAndBoundCover(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  LinearProgram lp = RandomCoveringLp(n, n, 11);
  std::vector<int> vars;
  for (int v = 0; v < n; ++v) vars.push_back(v);
  for (auto _ : state) {
    BnbResult r = SolveIlp(lp, vars);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_BranchAndBoundCover)->RangeMultiplier(2)->Range(8, 64);

void BM_Figure3EncodingSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(static_cast<uint64_t>(n));
  RandomInstanceOptions opt;
  opt.kind = ConstraintKind::kCardinality;
  opt.num_modules = n;
  SecureViewInstance inst = MakeRandomInstance(opt, &rng);
  SvEncoding enc = EncodeSecureView(inst);
  for (auto _ : state) {
    LpSolution s = SolveLp(enc.lp);
    benchmark::DoNotOptimize(s.objective);
  }
  state.counters["lp_vars"] = enc.lp.num_vars();
  state.counters["lp_rows"] = enc.lp.num_constraints();
}
BENCHMARK(BM_Figure3EncodingSolve)->DenseRange(4, 20, 4);

}  // namespace
}  // namespace provview

BENCHMARK_MAIN();
