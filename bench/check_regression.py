#!/usr/bin/env python3
"""Bench-regression guard for CI.

Compares a freshly produced BENCH_possible_worlds.json against the
committed baseline and fails (exit 1) if either engine's min speedup
dropped below half the committed value. Stdlib only.

Usage: check_regression.py <baseline.json> <fresh.json>
"""
import json
import sys

THRESHOLD = 0.5

# (label, keys tried in order — older baselines only carry the e1c_ name)
METRICS = [
    ("standalone_min_speedup_x", ("standalone_min_speedup_x", "e1c_min_speedup_x")),
    ("workflow_min_speedup_x", ("workflow_min_speedup_x",)),
    ("e1f_deep_chain_speedup_x", ("e1f_deep_chain_speedup_x",)),
    ("sharded_search_speedup_x", ("sharded_search_speedup_x",)),
    ("podsd_throughput_rps", ("podsd_throughput_rps",)),
    ("podsd_idle_conns_supported", ("podsd_idle_conns_supported",)),
    ("taskgraph_search_speedup_x", ("taskgraph_search_speedup_x",)),
    ("taskgraph_batch_speedup_x", ("taskgraph_batch_speedup_x",)),
    ("verdict_cache_hit_rate", ("verdict_cache_hit_rate",)),
    ("cache_batch_speedup_x", ("cache_batch_speedup_x",)),
    ("bnb_prune_speedup_x", ("bnb_prune_speedup_x",)),
    ("bnb_parallel_speedup_x", ("bnb_parallel_speedup_x",)),
]

# Thread-sensitive metrics (sequential vs sharded on the same host) are only
# comparable against the baseline when both runs saw the same host_threads; a
# ratio committed from a many-core dev box would otherwise fail forever on a
# small CI runner (and vice versa). On mismatched hosts they fall back to an
# absolute floor instead of being skipped: sharding must never cost more
# than ~2x over sequential anywhere, so a pathological slowdown (e.g. a
# memo-merge blowup) still fails the job.
THREAD_SENSITIVE = {
    "sharded_search_speedup_x",
    "podsd_throughput_rps",
    "taskgraph_search_speedup_x",
    "taskgraph_batch_speedup_x",
    "cache_batch_speedup_x",
    "bnb_prune_speedup_x",
    "bnb_parallel_speedup_x",
}
# Per-metric fallback floor used on mismatched hosts. 0.5x is the sharding
# bound; 50 rps is the daemon floor — any functioning podsd clears it by
# orders of magnitude, while a deadlocked accept loop or a per-request
# engine rebuild would not. The task-graph A/B ratios must likewise never
# fall below 0.5x the barrier path on any host.
# The warm-over-cold cache ratio shrinks with the short-mode workload (less
# cold checker work to amortize), so on mismatched hosts it only has to
# clear 2x — a cache that stops reusing verdicts across batches reads ~1x.
# The branch-and-bound race ratios shrink with the short-mode family (the
# smoke instances have shallower trees, so the pruning stack's fixed warm-
# start cost weighs more) and the parallel ratio is meaningless on one
# core: on mismatched hosts both only have to clear 0.5x — a pruned engine
# that somehow runs at less than half the legacy speed, or a wave engine
# that loses half its single-thread throughput when threaded, is a real
# regression anywhere.
ABSOLUTE_FLOORS = {
    "sharded_search_speedup_x": 0.5,
    "podsd_throughput_rps": 50.0,
    "taskgraph_search_speedup_x": 0.5,
    "taskgraph_batch_speedup_x": 0.5,
    "cache_batch_speedup_x": 2.0,
    "bnb_prune_speedup_x": 0.5,
    "bnb_parallel_speedup_x": 0.5,
}


def pick(doc, keys):
    for key in keys:
        value = doc.get(key)
        if isinstance(value, (int, float)):
            return float(value)
    return None


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)

    failures = []
    for label, keys in METRICS:
        base = pick(baseline, keys)
        new = pick(fresh, keys)
        if base is None:
            print(f"[bench-regression] {label}: no committed baseline, skipping")
            continue
        if new is None:
            failures.append(f"{label}: fresh run produced no value (baseline {base:.1f}x)")
            continue
        floor = THRESHOLD * base
        if label in THREAD_SENSITIVE and baseline.get("host_threads") != fresh.get(
            "host_threads"
        ):
            floor = ABSOLUTE_FLOORS[label]
            print(
                f"[bench-regression] {label}: host_threads differ "
                f"(baseline {baseline.get('host_threads')}, fresh "
                f"{fresh.get('host_threads')}), using absolute floor "
                f"{floor:.1f}"
            )
        verdict = "OK" if new >= floor else "REGRESSION"
        print(
            f"[bench-regression] {label}: fresh {new:.1f} vs baseline "
            f"{base:.1f} (floor {floor:.1f}) -> {verdict}"
        )
        if new < floor:
            failures.append(f"{label}: {new:.1f}x < floor {floor:.1f}x")

    if failures:
        print("[bench-regression] FAILED:", "; ".join(failures), file=sys.stderr)
        return 1
    print("[bench-regression] all speedups within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
