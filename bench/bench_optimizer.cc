// E10: the optimizer race — the legacy branch-and-bound (LIFO, full LP
// copy per node, no warm start, no oracle) against the wave engine with
// the whole pruning stack (scratch LP, best-bound order, greedy/rounding
// warm start, combinatorial safety oracle), sequentially and in parallel,
// on the hundred-module layered-DAG workflow family the generator grows
// for this experiment. Cover-based approximations ride along so the gap
// they leave on the table is recorded next to the speedup.
//
// Summary lines, recorded by run_benches.sh into
// BENCH_possible_worlds.json:
//
//   E10 optimizer: instances=3 modules=120 attrs=412 threads=8
//   E10 optimizer: legacy_ms=5210.4 pruned_ms=301.2 parallel_ms=120.8
//   E10 optimizer: bnb_prune_speedup_x=17.30 bnb_parallel_speedup_x=2.49
//       bnb_total_speedup_x=43.13
//   E10 optimizer: greedy_ratio=1.18 rounding_ratio=1.07
//       threshold_ratio=1.24 exact_cost=193.4
//
//   * bnb_prune_speedup_x    — legacy over pruned, both single-threaded:
//                              what the scratch LP + ordering + warm start
//                              + oracle buy before any parallelism.
//   * bnb_parallel_speedup_x — pruned single-thread over pruned at
//                              hardware threads: wave-engine scaling.
//   * bnb_total_speedup_x    — legacy over the full stack (the product).
//   * *_ratio                — approximation cost over the exact optimum.
//
// All ratios are minima over the instances (the conservative trajectory
// number, like every other bench here). The pruned sequential and parallel
// runs are PV_CHECKed to the SAME optimum bit-for-bit (the wave engine's
// determinism contract); the legacy run must match whenever its node
// budget did not trip. Wall-clock timing (CLOCK_MONOTONIC), not process
// CPU: parallel speedup is precisely the thing CPU time cannot see.
// PODS_BENCH_SHORT=1 shrinks the family for CI smoke runs.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "generators/random_workflow.h"
#include "secureview/feasibility.h"
#include "secureview/from_workflow.h"
#include "secureview/solvers.h"

namespace provview {
namespace {

bool ShortMode() { return std::getenv("PODS_BENCH_SHORT") != nullptr; }

double WallMs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1e3 + ts.tv_nsec / 1e6;
}

struct RaceRow {
  double legacy_ms = 0, pruned_ms = 0, parallel_ms = 0;
  bool legacy_tripped = false;
  double exact_cost = 0;
  double greedy_ratio = 0, rounding_ratio = 0, threshold_ratio = 0;
};

RandomWorkflowOptions FamilyOptions(int num_modules, int num_layers) {
  // The E10 family: hundred-module layered DAGs with enough attribute
  // sharing (gamma_bound 3, reuse 0.8) that requirement options overlap
  // across modules — the LP relaxation goes fractional and the race is
  // about tree size, not about one lucky integral root.
  RandomWorkflowOptions wopt;
  wopt.num_modules = num_modules;
  wopt.num_layers = num_layers;
  wopt.min_inputs = 2;
  wopt.max_inputs = 3;
  wopt.max_outputs = 2;
  wopt.gamma_bound = 3;
  wopt.reuse_probability = 0.8;
  return wopt;
}

RaceRow RaceOne(uint64_t seed, int num_modules, int num_layers, int threads) {
  Rng rng(seed);
  RandomWorkflowOptions wopt = FamilyOptions(num_modules, num_layers);
  GeneratedWorkflow gen = MakeRandomWorkflow(wopt, &rng);
  SecureViewInstance inst =
      InstanceFromWorkflow(*gen.workflow, /*gamma=*/2, ConstraintKind::kSet);

  RaceRow row;

  // Full stack, single thread. Wave width 4 on BOTH pruned rows so the
  // parallel row differs from this one in num_threads alone — the
  // thread-scaling ratio is not polluted by speculation-width effects.
  ExactOptions pruned_opt;
  pruned_opt.bnb.num_threads = 1;
  pruned_opt.bnb.wave_width = 4;
  double t0 = WallMs();
  SvResult pruned = SolveExact(inst, pruned_opt);
  row.pruned_ms = WallMs() - t0;
  PV_CHECK_MSG(pruned.status.ok(), "pruned exact solve failed");
  PV_CHECK_MSG(IsFeasible(inst, pruned.solution), "pruned solution infeasible");
  row.exact_cost = pruned.cost;

  // Same stack at hardware threads: must land on the identical optimum.
  ExactOptions par_opt = pruned_opt;
  par_opt.bnb.num_threads = threads;
  t0 = WallMs();
  SvResult par = SolveExact(inst, par_opt);
  row.parallel_ms = WallMs() - t0;
  PV_CHECK_MSG(par.status.ok(), "parallel exact solve failed");
  PV_CHECK_MSG(par.cost == pruned.cost,
               "parallel wave engine diverged from sequential optimum");

  // Legacy engine: per-node LP rebuild, LIFO, nothing warm, no oracle. A
  // node budget keeps a pathological instance from running for hours; a
  // tripped budget makes the measured time a LOWER bound on the legacy
  // cost (the speedups only get more conservative... larger, so the trip
  // is surfaced in the summary and the cost cross-check is relaxed to >=).
  BnbOptions legacy_opt;
  legacy_opt.use_scratch_lp = false;
  legacy_opt.best_bound = false;
  legacy_opt.cost_branching = false;
  legacy_opt.wave_width = 1;
  legacy_opt.num_threads = 1;
  legacy_opt.max_nodes = ShortMode() ? 2000 : 600;
  t0 = WallMs();
  SvResult legacy = SolveExact(inst, legacy_opt);
  row.legacy_ms = WallMs() - t0;
  row.legacy_tripped = !legacy.status.ok();
  if (!row.legacy_tripped) {
    PV_CHECK_MSG(std::abs(legacy.cost - pruned.cost) < 1e-6,
                 "legacy engine found a different optimum");
  }

  // The cover-based approximations on the same instance.
  SvResult greedy = SolveGreedyPerModule(inst);
  PV_CHECK_MSG(greedy.status.ok() && IsFeasible(inst, greedy.solution),
               "greedy failed");
  RoundingOptions ropt;
  ropt.seed = seed;
  SvResult rounding = SolveByLpRounding(inst, ropt);
  PV_CHECK_MSG(rounding.status.ok() && IsFeasible(inst, rounding.solution),
               "rounding failed");
  SvResult thresh = SolveByThresholdRounding(inst);
  PV_CHECK_MSG(thresh.status.ok() && IsFeasible(inst, thresh.solution),
               "threshold rounding failed");
  const double denom = std::max(pruned.cost, 1e-9);
  row.greedy_ratio = greedy.cost / denom;
  row.rounding_ratio = rounding.cost / denom;
  row.threshold_ratio = thresh.cost / denom;

  std::printf(
      "E10 row: seed=%llu modules=%d attrs=%d legacy_ms=%.1f%s "
      "pruned_ms=%.1f parallel_ms=%.1f cost=%.2f\n",
      static_cast<unsigned long long>(seed), num_modules, inst.num_attrs,
      row.legacy_ms, row.legacy_tripped ? " (node budget tripped)" : "",
      row.pruned_ms, row.parallel_ms, row.exact_cost);
  return row;
}

void OptimizerRace() {
  const int num_modules = ShortMode() ? 60 : 100;
  const int num_layers = ShortMode() ? 4 : 6;
  const int instances = 3;
  const int threads = std::max(2, ThreadPool::DefaultThreads());

  // Speedups are computed over the family's TOTAL wall clock (one shallow
  // seed must not mask the improvement on the deep ones); approximation
  // ratios stay per-instance minima, the conservative gap number.
  double legacy_total = 0, pruned_total = 0, parallel_total = 0;
  double greedy_ratio = std::numeric_limits<double>::infinity();
  double rounding_ratio = std::numeric_limits<double>::infinity();
  double threshold_ratio = std::numeric_limits<double>::infinity();
  double exact_cost = 0;
  int attrs = 0;
  for (int i = 0; i < instances; ++i) {
    RaceRow row = RaceOne(0xe10u + static_cast<uint64_t>(i) * 142, num_modules,
                          num_layers, threads);
    legacy_total += row.legacy_ms;
    pruned_total += row.pruned_ms;
    parallel_total += row.parallel_ms;
    greedy_ratio = std::min(greedy_ratio, row.greedy_ratio);
    rounding_ratio = std::min(rounding_ratio, row.rounding_ratio);
    threshold_ratio = std::min(threshold_ratio, row.threshold_ratio);
    exact_cost = row.exact_cost;
  }
  const double prune_speedup = legacy_total / std::max(pruned_total, 1e-3);
  const double parallel_speedup =
      pruned_total / std::max(parallel_total, 1e-3);
  const double total_speedup = legacy_total / std::max(parallel_total, 1e-3);
  {
    // attrs of the first instance, for the header line.
    Rng rng(0xe10u);
    RandomWorkflowOptions wopt = FamilyOptions(num_modules, num_layers);
    attrs = MakeRandomWorkflow(wopt, &rng).catalog->size();
  }

  std::printf("E10 optimizer: instances=%d modules=%d attrs=%d threads=%d\n",
              instances, num_modules, attrs, threads);
  std::printf("E10 optimizer: legacy_ms=%.1f pruned_ms=%.1f parallel_ms=%.1f\n",
              legacy_total, pruned_total, parallel_total);
  std::printf(
      "E10 optimizer: bnb_prune_speedup_x=%.2f bnb_parallel_speedup_x=%.2f "
      "bnb_total_speedup_x=%.2f\n",
      prune_speedup, parallel_speedup, total_speedup);
  std::printf(
      "E10 optimizer: greedy_ratio=%.3f rounding_ratio=%.3f "
      "threshold_ratio=%.3f exact_cost=%.2f\n",
      greedy_ratio, rounding_ratio, threshold_ratio, exact_cost);
}

}  // namespace
}  // namespace provview

int main() {
  provview::OptimizerRace();
  return 0;
}
