#!/usr/bin/env bash
# Runs the possible-worlds benches and emits a JSON timing record
# (BENCH_possible_worlds.json) so successive PRs can track the perf
# trajectory. Usage: bench/run_benches.sh [build_dir] [output.json]
# BENCH_SHORT=1 runs the short mode (shrunken E1e streaming spaces) used by
# the CI bench-regression smoke step.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_possible_worlds.json}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "${REPO_ROOT}"

for bin in bench_possible_worlds bench_standalone bench_podsd bench_taskgraph bench_memo bench_optimizer; do
  if [[ ! -x "${BUILD_DIR}/${bin}" ]]; then
    echo "error: ${BUILD_DIR}/${bin} not built (run: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j)" >&2
    exit 1
  fi
done

now_s() { date +%s.%N; }

if [[ "${BENCH_SHORT:-0}" == "1" ]]; then
  export PODS_BENCH_SHORT=1
fi

echo "== bench_possible_worlds =="
PW_LOG="$(mktemp)"
PW_T0="$(now_s)"
"${BUILD_DIR}/bench_possible_worlds" | tee "${PW_LOG}"
PW_T1="$(now_s)"
PW_SECONDS="$(awk -v a="${PW_T0}" -v b="${PW_T1}" 'BEGIN{printf "%.3f", b-a}')"
# Each extraction tolerates a missing pattern (`|| true`): under
# `set -eo pipefail` a failed grep would otherwise kill the script before
# the JSON's :-null fallbacks ever ran.
# "min speedup 123.4x (...)" from the E1c summary line (exclude the E1d
# workflow line, which also contains "min speedup").
PW_MIN_SPEEDUP="$(grep -v 'workflow min speedup' "${PW_LOG}" | grep -o 'min speedup [0-9.]*' | awk '{print $3}' | head -1 || true)"
# "workflow min speedup 45.6x (...)" from the E1d summary line.
PW_WF_MIN_SPEEDUP="$(grep -o 'workflow min speedup [0-9.]*' "${PW_LOG}" | awk '{print $4}' | head -1 || true)"
# E1e streaming-certification summary lines.
E1E_ROWS="$(grep -o 'E1e standalone: rows=[0-9]*' "${PW_LOG}" | awk -F= '{print $2}' | head -1 || true)"
E1E_GAMMA="$(grep -o 'E1e standalone: rows=[0-9]* gamma=[0-9]*' "${PW_LOG}" | awk -F= '{print $3}' | head -1 || true)"
E1E_MS="$(grep -o 'E1e standalone: .* stream_ms=[0-9.]*' "${PW_LOG}" | awk -F= '{print $NF}' | head -1 || true)"
E1E_WF_EXECS="$(grep -o 'E1e workflow: execs=[0-9]*' "${PW_LOG}" | awk -F= '{print $2}' | head -1 || true)"
E1E_WF_MS="$(grep -o 'E1e workflow: .* stream_ms=[0-9.]*' "${PW_LOG}" | awk -F= '{print $NF}' | head -1 || true)"
# E1f: "deep min speedup 243.9x" from the fixpoint race and the sharded
# subset-lattice summary line.
E1F_SPEEDUP="$(grep -o 'deep min speedup [0-9.]*' "${PW_LOG}" | awk '{print $4}' | head -1 || true)"
E1F_K="$(grep -o 'E1f sharded subset search: k=[0-9]*' "${PW_LOG}" | awk -F= '{print $2}' | head -1 || true)"
E1F_MINIMAL="$(grep -o 'minimal_sets=[0-9]*' "${PW_LOG}" | awk -F= '{print $2}' | head -1 || true)"
E1F_SEQ_MS="$(grep -o 'seq_ms=[0-9.]*' "${PW_LOG}" | awk -F= '{print $2}' | head -1 || true)"
E1F_SHARDED_MS="$(grep -o 'sharded_ms=[0-9.]*' "${PW_LOG}" | awk -F= '{print $2}' | head -1 || true)"
E1F_SHARDED_SPEEDUP="$(grep -o 'sharded_speedup=[0-9.]*' "${PW_LOG}" | awk -F= '{print $2}' | head -1 || true)"
rm -f "${PW_LOG}"

echo "== bench_standalone (world-walk benchmarks) =="
SA_T0="$(now_s)"
"${BUILD_DIR}/bench_standalone" \
  --benchmark_filter='WorldWalk|ShortCircuit' \
  --benchmark_format=json >"${BUILD_DIR}/bench_standalone_worldwalk.json"
SA_T1="$(now_s)"
SA_SECONDS="$(awk -v a="${SA_T0}" -v b="${SA_T1}" 'BEGIN{printf "%.3f", b-a}')"

echo "== bench_podsd (daemon throughput) =="
PODSD_LOG="$(mktemp)"
"${BUILD_DIR}/bench_podsd" | tee "${PODSD_LOG}"
# "E7 podsd: clients=4 requests=4000 seconds=0.71 rps=5633.8
#      p50_ms=0.051 p95_ms=0.102 p99_ms=0.184"
PODSD_RPS="$(grep -o 'rps=[0-9.]*' "${PODSD_LOG}" | awk -F= '{print $2}' | head -1 || true)"
PODSD_CLIENTS="$(grep -o 'clients=[0-9]*' "${PODSD_LOG}" | awk -F= '{print $2}' | head -1 || true)"
PODSD_P50="$(grep -o 'p50_ms=[0-9.]*' "${PODSD_LOG}" | awk -F= '{print $2}' | head -1 || true)"
PODSD_P95="$(grep -o 'p95_ms=[0-9.]*' "${PODSD_LOG}" | awk -F= '{print $2}' | head -1 || true)"
PODSD_P99="$(grep -o 'p99_ms=[0-9.]*' "${PODSD_LOG}" | awk -F= '{print $2}' | head -1 || true)"
# "E7 podsd idle: idle_conns=1000 ... reactor_p50_ms=0.055 ..." and the
# regression-guarded "podsd_idle_conns_supported=1000" line.
PODSD_IDLE_CONNS="$(grep -o 'podsd_idle_conns_supported=[0-9]*' "${PODSD_LOG}" | awk -F= '{print $2}' | head -1 || true)"
PODSD_IDLE_RPS="$(grep -o 'idle_rps=[0-9.]*' "${PODSD_LOG}" | awk -F= '{print $2}' | head -1 || true)"
PODSD_REACTOR_P50="$(grep -o 'reactor_p50_ms=[0-9.]*' "${PODSD_LOG}" | awk -F= '{print $2}' | head -1 || true)"
PODSD_REACTOR_P95="$(grep -o 'reactor_p95_ms=[0-9.]*' "${PODSD_LOG}" | awk -F= '{print $2}' | head -1 || true)"
PODSD_REACTOR_P99="$(grep -o 'reactor_p99_ms=[0-9.]*' "${PODSD_LOG}" | awk -F= '{print $2}' | head -1 || true)"
rm -f "${PODSD_LOG}"

echo "== bench_taskgraph (task graph vs fork-join barriers) =="
TG_LOG="$(mktemp)"
"${BUILD_DIR}/bench_taskgraph" | tee "${TG_LOG}"
# "E8 taskgraph search: k=24 ... taskgraph_search_speedup=1.17"
# "E8 taskgraph batch: requests=16 ... taskgraph_batch_speedup=1.34"
TG_SEARCH_SPEEDUP="$(grep -o 'taskgraph_search_speedup=[0-9.]*' "${TG_LOG}" | awk -F= '{print $2}' | head -1 || true)"
TG_BATCH_SPEEDUP="$(grep -o 'taskgraph_batch_speedup=[0-9.]*' "${TG_LOG}" | awk -F= '{print $2}' | head -1 || true)"
TG_SEARCH_ON_MS="$(grep 'E8 taskgraph search' "${TG_LOG}" | grep -o 'on_ms=[0-9.]*' | awk -F= '{print $2}' | head -1 || true)"
TG_BATCH_ON_MS="$(grep 'E8 taskgraph batch' "${TG_LOG}" | grep -o 'on_ms=[0-9.]*' | awk -F= '{print $2}' | head -1 || true)"
rm -f "${TG_LOG}"

echo "== bench_memo (shared verdict cache, cross-request reuse) =="
MEMO_LOG="$(mktemp)"
"${BUILD_DIR}/bench_memo" | tee "${MEMO_LOG}"
# "E9 memo: requests=256 cold_ms=84.1 warm_ms=2.3 cache_batch_speedup=36.56"
# "E9 memo: verdict_cache_hit_rate=0.998 cache_bytes=51234"
MEMO_SPEEDUP="$(grep -o 'cache_batch_speedup=[0-9.]*' "${MEMO_LOG}" | awk -F= '{print $2}' | head -1 || true)"
MEMO_HIT_RATE="$(grep -o 'verdict_cache_hit_rate=[0-9.]*' "${MEMO_LOG}" | awk -F= '{print $2}' | head -1 || true)"
MEMO_COLD_MS="$(grep -o 'cold_ms=[0-9.]*' "${MEMO_LOG}" | awk -F= '{print $2}' | head -1 || true)"
MEMO_WARM_MS="$(grep -o 'warm_ms=[0-9.]*' "${MEMO_LOG}" | awk -F= '{print $2}' | head -1 || true)"
MEMO_CACHE_BYTES="$(grep -o 'cache_bytes=[0-9]*' "${MEMO_LOG}" | awk -F= '{print $2}' | head -1 || true)"
rm -f "${MEMO_LOG}"

echo "== bench_optimizer (branch-and-bound race, E10) =="
OPT_LOG="$(mktemp)"
"${BUILD_DIR}/bench_optimizer" | tee "${OPT_LOG}"
# "E10 optimizer: legacy_ms=5210.4 pruned_ms=301.2 parallel_ms=120.8"
# "E10 optimizer: bnb_prune_speedup_x=17.30 bnb_parallel_speedup_x=2.49 bnb_total_speedup_x=43.13"
# "E10 optimizer: greedy_ratio=1.18 rounding_ratio=1.07 threshold_ratio=1.24 exact_cost=193.4"
OPT_PRUNE_SPEEDUP="$(grep -o 'bnb_prune_speedup_x=[0-9.]*' "${OPT_LOG}" | awk -F= '{print $2}' | head -1 || true)"
OPT_PAR_SPEEDUP="$(grep -o 'bnb_parallel_speedup_x=[0-9.]*' "${OPT_LOG}" | awk -F= '{print $2}' | head -1 || true)"
OPT_TOTAL_SPEEDUP="$(grep -o 'bnb_total_speedup_x=[0-9.]*' "${OPT_LOG}" | awk -F= '{print $2}' | head -1 || true)"
OPT_LEGACY_MS="$(grep -o 'legacy_ms=[0-9.]*' "${OPT_LOG}" | awk -F= '{print $2}' | tail -1 || true)"
OPT_PRUNED_MS="$(grep -o 'pruned_ms=[0-9.]*' "${OPT_LOG}" | awk -F= '{print $2}' | tail -1 || true)"
OPT_PARALLEL_MS="$(grep -o 'parallel_ms=[0-9.]*' "${OPT_LOG}" | awk -F= '{print $2}' | tail -1 || true)"
OPT_GREEDY_RATIO="$(grep -o 'greedy_ratio=[0-9.]*' "${OPT_LOG}" | awk -F= '{print $2}' | head -1 || true)"
OPT_ROUNDING_RATIO="$(grep -o 'rounding_ratio=[0-9.]*' "${OPT_LOG}" | awk -F= '{print $2}' | head -1 || true)"
OPT_THRESHOLD_RATIO="$(grep -o 'threshold_ratio=[0-9.]*' "${OPT_LOG}" | awk -F= '{print $2}' | head -1 || true)"
rm -f "${OPT_LOG}"

GIT_REV="$(git -C "${REPO_ROOT}" rev-parse --short HEAD 2>/dev/null || echo unknown)"

# standalone_min_speedup_x duplicates e1c_min_speedup_x under the name the
# CI bench-regression guard reads; the old key stays for trajectory
# continuity with earlier PRs. The fresh record is composed to a temp file
# first, then merged with the previous ${OUT}'s history so the trajectory
# across PRs survives each run (top-level keys stay the latest snapshot,
# which is what bench/check_regression.py reads).
LATEST_JSON="$(mktemp)"
cat >"${LATEST_JSON}" <<EOF
{
  "date_utc": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "git_rev": "${GIT_REV}",
  "host_threads": $(nproc),
  "short_mode": ${BENCH_SHORT:-0},
  "bench_possible_worlds_seconds": ${PW_SECONDS},
  "e1c_min_speedup_x": ${PW_MIN_SPEEDUP:-null},
  "standalone_min_speedup_x": ${PW_MIN_SPEEDUP:-null},
  "workflow_min_speedup_x": ${PW_WF_MIN_SPEEDUP:-null},
  "e1e_stream_rows": ${E1E_ROWS:-null},
  "e1e_stream_gamma": ${E1E_GAMMA:-null},
  "e1e_stream_ms": ${E1E_MS:-null},
  "e1e_workflow_execs": ${E1E_WF_EXECS:-null},
  "e1e_workflow_stream_ms": ${E1E_WF_MS:-null},
  "e1f_deep_chain_speedup_x": ${E1F_SPEEDUP:-null},
  "e1f_sharded_search_k": ${E1F_K:-null},
  "e1f_minimal_sets": ${E1F_MINIMAL:-null},
  "k24_seq_search_ms": ${E1F_SEQ_MS:-null},
  "k24_sharded_search_ms": ${E1F_SHARDED_MS:-null},
  "sharded_search_speedup_x": ${E1F_SHARDED_SPEEDUP:-null},
  "bench_standalone_worldwalk_seconds": ${SA_SECONDS},
  "bench_standalone_detail": "${BUILD_DIR}/bench_standalone_worldwalk.json",
  "podsd_throughput_rps": ${PODSD_RPS:-null},
  "podsd_bench_clients": ${PODSD_CLIENTS:-null},
  "podsd_p50_ms": ${PODSD_P50:-null},
  "podsd_p95_ms": ${PODSD_P95:-null},
  "podsd_p99_ms": ${PODSD_P99:-null},
  "podsd_idle_conns_supported": ${PODSD_IDLE_CONNS:-null},
  "podsd_idle_rps": ${PODSD_IDLE_RPS:-null},
  "podsd_reactor_p50_ms": ${PODSD_REACTOR_P50:-null},
  "podsd_reactor_p95_ms": ${PODSD_REACTOR_P95:-null},
  "podsd_reactor_p99_ms": ${PODSD_REACTOR_P99:-null},
  "taskgraph_search_on_ms": ${TG_SEARCH_ON_MS:-null},
  "taskgraph_batch_on_ms": ${TG_BATCH_ON_MS:-null},
  "taskgraph_search_speedup_x": ${TG_SEARCH_SPEEDUP:-null},
  "taskgraph_batch_speedup_x": ${TG_BATCH_SPEEDUP:-null},
  "memo_cold_ms": ${MEMO_COLD_MS:-null},
  "memo_warm_ms": ${MEMO_WARM_MS:-null},
  "verdict_cache_bytes": ${MEMO_CACHE_BYTES:-null},
  "verdict_cache_hit_rate": ${MEMO_HIT_RATE:-null},
  "cache_batch_speedup_x": ${MEMO_SPEEDUP:-null},
  "bnb_legacy_ms": ${OPT_LEGACY_MS:-null},
  "bnb_pruned_ms": ${OPT_PRUNED_MS:-null},
  "bnb_parallel_ms": ${OPT_PARALLEL_MS:-null},
  "bnb_prune_speedup_x": ${OPT_PRUNE_SPEEDUP:-null},
  "bnb_parallel_speedup_x": ${OPT_PAR_SPEEDUP:-null},
  "bnb_total_speedup_x": ${OPT_TOTAL_SPEEDUP:-null},
  "bnb_greedy_ratio": ${OPT_GREEDY_RATIO:-null},
  "bnb_rounding_ratio": ${OPT_ROUNDING_RATIO:-null},
  "bnb_threshold_ratio": ${OPT_THRESHOLD_RATIO:-null}
}
EOF
python3 - "${LATEST_JSON}" "${OUT}" <<'PY'
import json
import sys

HIST_KEYS = [
    "date_utc", "git_rev", "host_threads", "short_mode",
    "standalone_min_speedup_x", "workflow_min_speedup_x",
    "e1e_stream_ms", "e1e_workflow_stream_ms",
    "e1f_deep_chain_speedup_x", "e1f_sharded_search_k",
    "k24_seq_search_ms", "k24_sharded_search_ms",
    "sharded_search_speedup_x", "podsd_throughput_rps",
    "podsd_p50_ms", "podsd_p95_ms", "podsd_p99_ms",
    "podsd_idle_conns_supported", "podsd_idle_rps",
    "podsd_reactor_p50_ms", "podsd_reactor_p95_ms", "podsd_reactor_p99_ms",
    "taskgraph_search_speedup_x", "taskgraph_batch_speedup_x",
    "verdict_cache_hit_rate", "cache_batch_speedup_x",
    "bnb_prune_speedup_x", "bnb_parallel_speedup_x", "bnb_total_speedup_x",
    "bnb_greedy_ratio", "bnb_rounding_ratio", "bnb_threshold_ratio",
]

latest_path, out_path = sys.argv[1], sys.argv[2]
with open(latest_path) as f:
    latest = json.load(f)

history = []
try:
    with open(out_path) as f:
        prev = json.load(f)
    history = prev.get("history", [])
    if not history:
        # The previous record predates the history array: seed it with that
        # run's snapshot so the earliest measured point is not lost.
        history = [{k: prev[k] for k in HIST_KEYS if k in prev}]
except (OSError, ValueError):
    pass

history.append({k: latest[k] for k in HIST_KEYS if k in latest})
latest["history"] = history
with open(out_path, "w") as f:
    json.dump(latest, f, indent=2)
    f.write("\n")
PY
rm -f "${LATEST_JSON}"
echo "wrote ${OUT} ($(python3 -c "import json;print(len(json.load(open('${OUT}'))['history']))") history entries)"
