#!/usr/bin/env bash
# Runs the possible-worlds benches and emits a JSON timing record
# (BENCH_possible_worlds.json) so successive PRs can track the perf
# trajectory. Usage: bench/run_benches.sh [build_dir] [output.json]
# BENCH_SHORT=1 runs the short mode (shrunken E1e streaming spaces) used by
# the CI bench-regression smoke step.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_possible_worlds.json}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "${REPO_ROOT}"

for bin in bench_possible_worlds bench_standalone; do
  if [[ ! -x "${BUILD_DIR}/${bin}" ]]; then
    echo "error: ${BUILD_DIR}/${bin} not built (run: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j)" >&2
    exit 1
  fi
done

now_s() { date +%s.%N; }

if [[ "${BENCH_SHORT:-0}" == "1" ]]; then
  export PODS_BENCH_SHORT=1
fi

echo "== bench_possible_worlds =="
PW_LOG="$(mktemp)"
PW_T0="$(now_s)"
"${BUILD_DIR}/bench_possible_worlds" | tee "${PW_LOG}"
PW_T1="$(now_s)"
PW_SECONDS="$(awk -v a="${PW_T0}" -v b="${PW_T1}" 'BEGIN{printf "%.3f", b-a}')"
# Each extraction tolerates a missing pattern (`|| true`): under
# `set -eo pipefail` a failed grep would otherwise kill the script before
# the JSON's :-null fallbacks ever ran.
# "min speedup 123.4x (...)" from the E1c summary line (exclude the E1d
# workflow line, which also contains "min speedup").
PW_MIN_SPEEDUP="$(grep -v 'workflow min speedup' "${PW_LOG}" | grep -o 'min speedup [0-9.]*' | awk '{print $3}' | head -1 || true)"
# "workflow min speedup 45.6x (...)" from the E1d summary line.
PW_WF_MIN_SPEEDUP="$(grep -o 'workflow min speedup [0-9.]*' "${PW_LOG}" | awk '{print $4}' | head -1 || true)"
# E1e streaming-certification summary lines.
E1E_ROWS="$(grep -o 'E1e standalone: rows=[0-9]*' "${PW_LOG}" | awk -F= '{print $2}' | head -1 || true)"
E1E_GAMMA="$(grep -o 'E1e standalone: rows=[0-9]* gamma=[0-9]*' "${PW_LOG}" | awk -F= '{print $3}' | head -1 || true)"
E1E_MS="$(grep -o 'E1e standalone: .* stream_ms=[0-9.]*' "${PW_LOG}" | awk -F= '{print $NF}' | head -1 || true)"
E1E_WF_EXECS="$(grep -o 'E1e workflow: execs=[0-9]*' "${PW_LOG}" | awk -F= '{print $2}' | head -1 || true)"
E1E_WF_MS="$(grep -o 'E1e workflow: .* stream_ms=[0-9.]*' "${PW_LOG}" | awk -F= '{print $NF}' | head -1 || true)"
rm -f "${PW_LOG}"

echo "== bench_standalone (world-walk benchmarks) =="
SA_T0="$(now_s)"
"${BUILD_DIR}/bench_standalone" \
  --benchmark_filter='WorldWalk|ShortCircuit' \
  --benchmark_format=json >"${BUILD_DIR}/bench_standalone_worldwalk.json"
SA_T1="$(now_s)"
SA_SECONDS="$(awk -v a="${SA_T0}" -v b="${SA_T1}" 'BEGIN{printf "%.3f", b-a}')"

GIT_REV="$(git -C "${REPO_ROOT}" rev-parse --short HEAD 2>/dev/null || echo unknown)"

# standalone_min_speedup_x duplicates e1c_min_speedup_x under the name the
# CI bench-regression guard reads; the old key stays for trajectory
# continuity with earlier PRs.
cat >"${OUT}" <<EOF
{
  "date_utc": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "git_rev": "${GIT_REV}",
  "host_threads": $(nproc),
  "short_mode": ${BENCH_SHORT:-0},
  "bench_possible_worlds_seconds": ${PW_SECONDS},
  "e1c_min_speedup_x": ${PW_MIN_SPEEDUP:-null},
  "standalone_min_speedup_x": ${PW_MIN_SPEEDUP:-null},
  "workflow_min_speedup_x": ${PW_WF_MIN_SPEEDUP:-null},
  "e1e_stream_rows": ${E1E_ROWS:-null},
  "e1e_stream_gamma": ${E1E_GAMMA:-null},
  "e1e_stream_ms": ${E1E_MS:-null},
  "e1e_workflow_execs": ${E1E_WF_EXECS:-null},
  "e1e_workflow_stream_ms": ${E1E_WF_MS:-null},
  "bench_standalone_worldwalk_seconds": ${SA_SECONDS},
  "bench_standalone_detail": "${BUILD_DIR}/bench_standalone_worldwalk.json"
}
EOF
echo "wrote ${OUT}"
