// Experiment E3 — Theorem 4: assembling workflow privacy from standalone
// guarantees in all-private workflows.
//
// For random all-private workflows: hide the union of per-module
// standalone-safe sets, certify with the Theorem-4 sufficient condition,
// and — where brute-force world enumeration is feasible — confirm the
// ground-truth workflow Γ meets the target. Also measures the running-time
// asymmetry: composition is milliseconds, world enumeration explodes.
#include <iostream>

#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "generators/random_workflow.h"
#include "privacy/safe_subset_search.h"
#include "privacy/workflow_privacy.h"

using namespace provview;

int main() {
  PrintBanner("E3a: Theorem 4 on random all-private workflows (Gamma = 2)");
  TablePrinter t({"modules", "attrs", "hidden", "hidden cost", "certified",
                  "ground-truth Gamma", "compose (ms)", "enumerate (ms)"});
  const int64_t gamma = 2;
  for (int n : {2, 3, 4, 6, 8, 12}) {
    Rng rng(static_cast<uint64_t>(n) * 71 + 9);
    RandomWorkflowOptions opt;
    opt.num_modules = n;
    opt.max_inputs = 2;
    opt.max_outputs = n <= 4 ? 1 : 2;  // keep world enumeration feasible
    opt.gamma_bound = 2;
    GeneratedWorkflow gen = MakeRandomWorkflow(opt, &rng);
    Workflow& w = *gen.workflow;

    Stopwatch compose_sw;
    std::vector<Bitset64> per_module;
    for (int i : w.PrivateModuleIndices()) {
      MinCostSafeResult r = MinCostSafeHiddenSet(w.module(i), gamma);
      PV_CHECK(r.found);
      per_module.push_back(r.hidden);
    }
    ComposedSolution composed = ComposeStandaloneSolutions(w, per_module);
    PrivacyCertificate cert =
        CertifyWorkflowPrivacy(w, composed.hidden, gamma);
    double compose_ms = compose_sw.ElapsedMillis();

    std::string truth = "-";
    double enum_ms = -1.0;
    if (n <= 4) {
      Stopwatch enum_sw;
      int64_t g = GroundTruthWorkflowGamma(w, composed.hidden, {});
      enum_ms = enum_sw.ElapsedMillis();
      truth = std::to_string(g);
      PV_CHECK_MSG(g >= gamma, "Theorem 4 violated?!");
    }
    t.NewRow()
        .AddCell(n)
        .AddCell(w.used_attrs().count())
        .AddCell(composed.hidden.count())
        .AddCell(composed.attr_cost, 2)
        .AddCell(cert.certified ? "yes" : "NO")
        .AddCell(truth)
        .AddCell(compose_ms, 2)
        .AddCell(enum_ms < 0 ? std::string("(too large)")
                             : std::to_string(enum_ms));
  }
  t.Print();
  std::cout << "  (Theorem 4: the certificate must read 'yes' and the "
               "ground truth must be >= 2 wherever enumerable.)\n";

  PrintBanner("E3b: per-module privacy levels under the composed view");
  Rng rng(123);
  RandomWorkflowOptions opt;
  opt.num_modules = 6;
  opt.max_inputs = 3;
  opt.max_outputs = 2;
  GeneratedWorkflow gen = MakeRandomWorkflow(opt, &rng);
  Workflow& w = *gen.workflow;
  std::vector<Bitset64> per_module;
  for (int i : w.PrivateModuleIndices()) {
    MinCostSafeResult r = MinCostSafeHiddenSet(w.module(i), 2);
    PV_CHECK(r.found);
    per_module.push_back(r.hidden);
  }
  ComposedSolution composed = ComposeStandaloneSolutions(w, per_module);
  std::vector<int64_t> gammas = PerModuleStandaloneGamma(w, composed.hidden);
  TablePrinter t2({"module", "k=|I|+|O|", "standalone Gamma under union"});
  for (int i = 0; i < w.num_modules(); ++i) {
    t2.NewRow()
        .AddCell(w.module(i).name())
        .AddCell(w.module(i).arity())
        .AddCell(gammas[static_cast<size_t>(i)]);
  }
  t2.Print();
  std::cout << "  (Every row >= 2: hiding the union preserves each module's "
               "standalone guarantee — the mechanism behind Theorem 4.)\n";
  return 0;
}
