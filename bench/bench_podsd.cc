// E7: podsd daemon throughput. Starts an in-process daemon on an ephemeral
// loopback port, fans several client connections out, and hammers CERTIFY
// requests over randomized fig1 hidden sets — the steady-state shape where
// the registry's shared VerdictCache answers most requests and the cost is
// framing + dispatch + memo lookups. Prints a summary line run_benches.sh
// records as `podsd_throughput_rps` plus the per-request latency tail
// (`podsd_p50_ms` / `podsd_p95_ms` / `podsd_p99_ms`):
//
//   E7 podsd: clients=4 requests=4000 seconds=0.71 rps=5633.8
//       p50_ms=0.051 p95_ms=0.102 p99_ms=0.184
//
// A second phase measures the reactor under connection pressure: 1000 idle
// connections parked on the epoll reactor while the same client hammer
// runs. The line records how many idle connections the daemon actually
// held (`podsd_idle_conns_supported` — the regression guard fails if this
// collapses) and the latency tail with the idle fleet attached
// (`reactor_p50_ms` / `reactor_p95_ms` / `reactor_p99_ms`):
//
//   E7 podsd idle: idle_conns=1000 reactor_threads=2 clients=4
//       requests=4000 seconds=0.78 idle_rps=5121.3
//       reactor_p50_ms=0.055 reactor_p95_ms=0.110 reactor_p99_ms=0.190
//   E7 podsd idle: podsd_idle_conns_supported=1000
//
// PODS_BENCH_SHORT=1 shrinks the request count for CI smoke runs.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "server/client.h"
#include "server/daemon.h"
#include "server/registry.h"
#include "workflow/fig1_workflow.h"

namespace provview {
namespace {

void ClientLoop(uint16_t port, uint64_t seed, int requests, const int* attrs,
                int num_attrs, std::vector<double>* latencies_ms) {
  PodsClient client;
  PV_CHECK_MSG(client.Connect(port).ok(), "client connect failed");
  Rng rng(seed);
  if (latencies_ms != nullptr) {
    latencies_ms->reserve(static_cast<size_t>(requests));
  }
  for (int i = 0; i < requests; ++i) {
    CertifyRequest req;
    req.workflow = "fig1";
    req.deadline_ms = 10'000;
    CertifyItem item;
    item.gamma = 2;
    const uint32_t mask =
        static_cast<uint32_t>(rng.NextBelow(1u << num_attrs));
    for (int b = 0; b < num_attrs; ++b) {
      if ((mask >> b) & 1u) {
        item.hidden_attrs.push_back(static_cast<uint32_t>(attrs[b]));
      }
    }
    req.items.push_back(std::move(item));
    CertifyResponse resp;
    const auto r0 = std::chrono::steady_clock::now();
    const Status s = client.Certify(req, /*batch=*/false, &resp);
    const auto r1 = std::chrono::steady_clock::now();
    PV_CHECK_MSG(s.ok(), "certify failed mid-bench");
    if (latencies_ms != nullptr) {
      latencies_ms->push_back(
          std::chrono::duration<double, std::milli>(r1 - r0).count());
    }
  }
}

// Nearest-rank percentile over a sorted sample.
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

// Lifts the soft fd limit toward the hard one so the 1000-idle-connection
// phase (2000+ fds in-process: client end + daemon end) fits on hosts whose
// default soft limit is 1024.
void RaiseFdLimit() {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  rlim_t want = 8192;
  if (lim.rlim_max != RLIM_INFINITY && lim.rlim_max < want) {
    want = lim.rlim_max;
  }
  if (lim.rlim_cur < want) {
    lim.rlim_cur = want;
    (void)setrlimit(RLIMIT_NOFILE, &lim);
  }
}

int Run() {
  RaiseFdLimit();
  const bool short_mode = std::getenv("PODS_BENCH_SHORT") != nullptr;
  const int kClients = 4;
  const int kRequestsPerClient = short_mode ? 250 : 1000;

  WorkflowRegistry registry;
  registry.RegisterBuiltins();
  PodsDaemon daemon(&registry);
  PV_CHECK_MSG(daemon.Start().ok(), "daemon failed to start");

  Fig1Workflow fig1 = MakeFig1Workflow();
  const int attrs[] = {fig1.a3, fig1.a4, fig1.a5, fig1.a6, fig1.a7};

  // Warm the verdict cache so the measured window is the daemon steady state,
  // not the first-touch checker calls.
  ClientLoop(daemon.port(), 1, 1u << 5, attrs, 5, nullptr);

  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(kClients));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back(ClientLoop, daemon.port(), 0x706f6473u + c,
                         kRequestsPerClient, attrs, 5,
                         &latencies[static_cast<size_t>(c)]);
  }
  for (std::thread& t : clients) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  const double seconds =
      std::chrono::duration<double>(t1 - t0).count();
  const int total = kClients * kRequestsPerClient;
  const double rps = total / seconds;
  std::vector<double> all;
  all.reserve(static_cast<size_t>(total));
  for (const std::vector<double>& v : latencies) {
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  std::printf(
      "E7 podsd: clients=%d requests=%d seconds=%.2f rps=%.1f "
      "p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f\n",
      kClients, total, seconds, rps, Percentile(all, 50.0),
      Percentile(all, 95.0), Percentile(all, 99.0));

  // -- idle-connection phase: park 1000 connections on the reactor, then
  // rerun the hammer. The idle fleet costs epoll entries, not threads, so
  // the tail should barely move; a thread-per-connection front-end would
  // need 1000 threads just to hold them.
  constexpr int kIdleTarget = 1000;
  std::vector<std::unique_ptr<PodsClient>> idle;
  idle.reserve(kIdleTarget);
  for (int i = 0; i < kIdleTarget; ++i) {
    auto conn = std::make_unique<PodsClient>();
    if (!conn->Connect(daemon.port()).ok()) break;  // fd limit hit
    idle.push_back(std::move(conn));
  }
  // Round-trip a sample to prove the parked connections are live.
  for (size_t i = 0; i < idle.size(); i += 97) {
    PV_CHECK_MSG(idle[i]->Ping().ok(), "idle connection went dead");
  }

  for (std::vector<double>& v : latencies) v.clear();
  const auto i0 = std::chrono::steady_clock::now();
  std::vector<std::thread> idle_clients;
  for (int c = 0; c < kClients; ++c) {
    idle_clients.emplace_back(ClientLoop, daemon.port(), 0x69646c65u + c,
                              kRequestsPerClient, attrs, 5,
                              &latencies[static_cast<size_t>(c)]);
  }
  for (std::thread& t : idle_clients) t.join();
  const auto i1 = std::chrono::steady_clock::now();

  const double idle_seconds =
      std::chrono::duration<double>(i1 - i0).count();
  all.clear();
  for (const std::vector<double>& v : latencies) {
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  std::printf(
      "E7 podsd idle: idle_conns=%zu reactor_threads=%d clients=%d "
      "requests=%d seconds=%.2f idle_rps=%.1f "
      "reactor_p50_ms=%.3f reactor_p95_ms=%.3f reactor_p99_ms=%.3f\n",
      idle.size(), PodsDaemon::Options().reactor_threads, kClients, total,
      idle_seconds, total / idle_seconds, Percentile(all, 50.0),
      Percentile(all, 95.0), Percentile(all, 99.0));
  std::printf("E7 podsd idle: podsd_idle_conns_supported=%zu\n",
              idle.size());

  idle.clear();
  daemon.Stop();
  return 0;
}

}  // namespace
}  // namespace provview

int main() { return provview::Run(); }
