// E7: podsd daemon throughput. Starts an in-process daemon on an ephemeral
// loopback port, fans several client connections out, and hammers CERTIFY
// requests over randomized fig1 hidden sets — the steady-state shape where
// the registry's shared VerdictCache answers most requests and the cost is
// framing + dispatch + memo lookups. Prints a summary line run_benches.sh
// records as `podsd_throughput_rps` plus the per-request latency tail
// (`podsd_p50_ms` / `podsd_p95_ms` / `podsd_p99_ms`):
//
//   E7 podsd: clients=4 requests=4000 seconds=0.71 rps=5633.8
//       p50_ms=0.051 p95_ms=0.102 p99_ms=0.184
//
// PODS_BENCH_SHORT=1 shrinks the request count for CI smoke runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "server/client.h"
#include "server/daemon.h"
#include "server/registry.h"
#include "workflow/fig1_workflow.h"

namespace provview {
namespace {

void ClientLoop(uint16_t port, uint64_t seed, int requests, const int* attrs,
                int num_attrs, std::vector<double>* latencies_ms) {
  PodsClient client;
  PV_CHECK_MSG(client.Connect(port).ok(), "client connect failed");
  Rng rng(seed);
  if (latencies_ms != nullptr) {
    latencies_ms->reserve(static_cast<size_t>(requests));
  }
  for (int i = 0; i < requests; ++i) {
    CertifyRequest req;
    req.workflow = "fig1";
    req.deadline_ms = 10'000;
    CertifyItem item;
    item.gamma = 2;
    const uint32_t mask =
        static_cast<uint32_t>(rng.NextBelow(1u << num_attrs));
    for (int b = 0; b < num_attrs; ++b) {
      if ((mask >> b) & 1u) {
        item.hidden_attrs.push_back(static_cast<uint32_t>(attrs[b]));
      }
    }
    req.items.push_back(std::move(item));
    CertifyResponse resp;
    const auto r0 = std::chrono::steady_clock::now();
    const Status s = client.Certify(req, /*batch=*/false, &resp);
    const auto r1 = std::chrono::steady_clock::now();
    PV_CHECK_MSG(s.ok(), "certify failed mid-bench");
    if (latencies_ms != nullptr) {
      latencies_ms->push_back(
          std::chrono::duration<double, std::milli>(r1 - r0).count());
    }
  }
}

// Nearest-rank percentile over a sorted sample.
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

int Run() {
  const bool short_mode = std::getenv("PODS_BENCH_SHORT") != nullptr;
  const int kClients = 4;
  const int kRequestsPerClient = short_mode ? 250 : 1000;

  WorkflowRegistry registry;
  registry.RegisterBuiltins();
  PodsDaemon daemon(&registry);
  PV_CHECK_MSG(daemon.Start().ok(), "daemon failed to start");

  Fig1Workflow fig1 = MakeFig1Workflow();
  const int attrs[] = {fig1.a3, fig1.a4, fig1.a5, fig1.a6, fig1.a7};

  // Warm the verdict cache so the measured window is the daemon steady state,
  // not the first-touch checker calls.
  ClientLoop(daemon.port(), 1, 1u << 5, attrs, 5, nullptr);

  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(kClients));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back(ClientLoop, daemon.port(), 0x706f6473u + c,
                         kRequestsPerClient, attrs, 5,
                         &latencies[static_cast<size_t>(c)]);
  }
  for (std::thread& t : clients) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  const double seconds =
      std::chrono::duration<double>(t1 - t0).count();
  const int total = kClients * kRequestsPerClient;
  const double rps = total / seconds;
  std::vector<double> all;
  all.reserve(static_cast<size_t>(total));
  for (const std::vector<double>& v : latencies) {
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  std::printf(
      "E7 podsd: clients=%d requests=%d seconds=%.2f rps=%.1f "
      "p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f\n",
      kClients, total, seconds, rps, Percentile(all, 50.0),
      Percentile(all, 95.0), Percentile(all, 99.0));

  daemon.Stop();
  return 0;
}

}  // namespace
}  // namespace provview

int main() { return provview::Run(); }
