// Experiment E8 — the set-cover hardness sources of Theorem 5 (B.4.2) and
// Theorem 9 (C.2).
//
// (a) All-private, cardinality constraints, ℓ_max = 1, unit costs:
//     OPT(Secure-View) = OPT(set cover) exactly, so no algorithm can beat
//     Ω(log n)-approximation; greedy-on-the-reduction tracks the H_n curve.
// (b) General workflows, no data sharing: privatization cost alone encodes
//     set cover (Theorem 9), killing the Theorem-7 constant-factor hope.
#include <cmath>
#include <iostream>

#include "common/table_printer.h"
#include "reductions/to_secure_view.h"
#include "secureview/feasibility.h"
#include "secureview/solvers.h"

using namespace provview;

namespace {

double HarmonicNumber(int n) {
  double h = 0;
  for (int i = 1; i <= n; ++i) h += 1.0 / i;
  return h;
}

}  // namespace

int main() {
  PrintBanner("E8a: set cover -> cardinality Secure-View (Thm 5 hardness)");
  TablePrinter t({"universe", "sets", "OPT(SC)", "OPT(SV)", "match",
                  "greedy(SV)", "greedy/OPT", "H_n budget"});
  for (int universe : {8, 12, 16, 24, 32, 48}) {
    Rng rng(static_cast<uint64_t>(universe) * 3 + 1);
    SetCoverInstance sc =
        RandomSetCover(universe, universe / 2 + 2, universe / 3 + 2, &rng);
    SetCoverResult sc_opt = SolveSetCoverExact(sc);
    PV_CHECK(sc_opt.status.ok());
    SetCoverCardReduction red = ReduceSetCoverToCardinality(sc);
    SvResult sv_opt = SolveExact(red.instance);
    PV_CHECK(sv_opt.status.ok());
    SvResult sv_greedy = SolveGreedyCoverage(red.instance);
    PV_CHECK(IsFeasible(red.instance, sv_greedy.solution));
    bool match = std::abs(sv_opt.cost - sc_opt.cost) < 1e-6;
    PV_CHECK_MSG(match, "B.4.2 reduction equality failed");
    t.NewRow()
        .AddCell(universe)
        .AddCell(sc.num_sets())
        .AddCell(sc_opt.cost)
        .AddCell(sv_opt.cost, 1)
        .AddCell(match ? "yes" : "NO")
        .AddCell(sv_greedy.cost, 1)
        .AddCell(sv_greedy.cost / sv_opt.cost, 3)
        .AddCell(HarmonicNumber(universe), 3);
  }
  t.Print();

  PrintBanner(
      "E8b: set cover -> GENERAL workflow via privatization (Theorem 9)");
  TablePrinter t2({"universe", "sets", "OPT(SC)", "OPT(SV)", "attr cost",
                   "privatization cost", "match"});
  for (int universe : {8, 12, 16, 24, 32}) {
    Rng rng(static_cast<uint64_t>(universe) * 13 + 5);
    SetCoverInstance sc =
        RandomSetCover(universe, universe / 2 + 2, universe / 3 + 2, &rng);
    SetCoverResult sc_opt = SolveSetCoverExact(sc);
    PV_CHECK(sc_opt.status.ok());
    SetCoverGeneralReduction red = ReduceSetCoverToGeneral(sc);
    PV_CHECK(red.instance.DataSharingDegree() <= 1);
    SvResult sv_opt = SolveExact(red.instance);
    PV_CHECK(sv_opt.status.ok());
    bool match = std::abs(sv_opt.cost - sc_opt.cost) < 1e-6;
    PV_CHECK_MSG(match, "C.2 reduction equality failed");
    t2.NewRow()
        .AddCell(universe)
        .AddCell(sc.num_sets())
        .AddCell(sc_opt.cost)
        .AddCell(sv_opt.cost, 1)
        .AddCell(sv_opt.solution.AttrCost(red.instance), 1)
        .AddCell(sv_opt.solution.PrivatizationCost(red.instance), 1)
        .AddCell(match ? "yes" : "NO");
  }
  t2.Print();
  std::cout << "  (All cost sits in privatizations — data is free — so "
               "general workflows are Ω(log n)-hard even without data "
               "sharing, unlike the all-private case.)\n";
  return 0;
}
