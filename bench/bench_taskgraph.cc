// E8: dependency task graph vs fork-join barriers — the A/B race for the
// two migrated hot paths.
//
//   * Subset-lattice search: k=24 (12 in / 12 out) minimal-safe-set walk,
//     whose middle levels dwarf the outer ones (the skewed-shard shape that
//     starves a barrier), run with use_task_graph on vs off at the host's
//     thread count.
//   * Batch certification: a 16-request CertifyWorkflowBatch with ground
//     truth over a random 8-module workflow — per-module memo chains, the
//     tables build and the per-request enumerations either overlap (task
//     graph) or run as three fork-join phases (barrier).
//
// Results are PV_CHECKed identical between the modes before any number is
// printed. Timing is interleaved min-of-N so drift hits both variants
// equally; on a single-core host both modes short-circuit to the same
// sequential code and the ratios read ~1.0. run_benches.sh records the two
// summary keys as `taskgraph_search_speedup_x` / `taskgraph_batch_speedup_x`:
//
//   E8 taskgraph search: k=24 on_ms=4100.2 off_ms=4800.9 taskgraph_search_speedup=1.17
//   E8 taskgraph batch: requests=16 on_ms=90.1 off_ms=120.7 taskgraph_batch_speedup=1.34
//
// PODS_BENCH_SHORT=1 shrinks k and the round count for CI smoke runs.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "generators/random_workflow.h"
#include "module/module_library.h"
#include "privacy/safe_subset_search.h"
#include "privacy/workflow_privacy.h"

namespace provview {
namespace {

bool ShortMode() { return std::getenv("PODS_BENCH_SHORT") != nullptr; }

// On a single-core host both variants short-circuit to the same
// single-threaded code, so any wall-clock difference is preemption by
// neighboring processes — the process-CPU clock measures the actual work.
// Multi-core hosts keep wall time: there the race measures parallel
// overlap, which CPU time would hide.
double RaceClockMs() {
  timespec ts;
  if (std::thread::hardware_concurrency() > 1) {
    clock_gettime(CLOCK_MONOTONIC, &ts);
  } else {
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  }
  return ts.tv_sec * 1e3 + ts.tv_nsec / 1e6;
}

template <typename Fn>
double TimeMs(Fn&& fn) {
  const double t0 = RaceClockMs();
  fn();
  return RaceClockMs() - t0;
}

void SearchRace() {
  const int half = ShortMode() ? 10 : 12;
  auto catalog = std::make_shared<AttributeCatalog>();
  std::vector<AttrId> in, out;
  for (int i = 0; i < half; ++i) {
    in.push_back(catalog->Add("i" + std::to_string(i)));
  }
  for (int o = 0; o < half; ++o) {
    out.push_back(catalog->Add("o" + std::to_string(o)));
  }
  Rng rng(3);
  ModulePtr m = MakeRandomFunction("wide", catalog, in, out, &rng);
  const int64_t gamma = 4;

  SubsetSearchOptions on, off;
  on.num_threads = 0;  // host thread count
  on.use_task_graph = true;
  off.num_threads = 0;
  off.use_task_graph = false;

  std::vector<Bitset64> a, b;
  SafeSearchStats on_stats, off_stats;
  // Untimed warmup: first touch of the module's relation, the allocator and
  // the page cache must not be billed to whichever variant runs first.
  {
    SafeSearchStats s;
    a = MinimalSafeHiddenSets(*m, gamma, &s, Module::kDefaultMaterializeRows,
                              on);
  }
  double on_ms = std::numeric_limits<double>::infinity();
  double off_ms = std::numeric_limits<double>::infinity();
  const int rounds = ShortMode() ? 2 : 3;
  for (int round = 0; round < rounds; ++round) {
    on_ms = std::min(on_ms, TimeMs([&] {
                       SafeSearchStats s;
                       a = MinimalSafeHiddenSets(
                           *m, gamma, &s, Module::kDefaultMaterializeRows,
                           on);
                       on_stats = s;
                     }));
    off_ms = std::min(off_ms, TimeMs([&] {
                        SafeSearchStats s;
                        b = MinimalSafeHiddenSets(
                            *m, gamma, &s, Module::kDefaultMaterializeRows,
                            off);
                        off_stats = s;
                      }));
  }
  PV_CHECK_MSG(a == b,
               "task-graph search diverged from the barrier search");
  PV_CHECK_MSG(on_stats.subsets_examined == off_stats.subsets_examined,
               "task-graph search examined a different lattice");
  PV_CHECK_MSG(on_stats.checker_calls + on_stats.cache_hits ==
                   off_stats.checker_calls + off_stats.cache_hits,
               "task-graph search lost memo-visible lookups");
  std::printf(
      "E8 taskgraph search: k=%d minimal_sets=%zu on_ms=%.1f off_ms=%.1f "
      "taskgraph_search_speedup=%.2f\n",
      2 * half, a.size(), on_ms, off_ms, off_ms / std::max(on_ms, 1e-6));
}

void BatchRace() {
  // Small enough for the ground-truth possible-worlds enumeration (the
  // candidate space is exponential in free-module slots), big enough that
  // the per-module memo chains and the 16 enumerations carry real work.
  RandomWorkflowOptions wopts;
  wopts.num_modules = 4;
  wopts.max_inputs = 2;
  wopts.max_outputs = 1;
  Rng rng(17);
  GeneratedWorkflow gen = MakeRandomWorkflow(wopts, &rng);
  const Workflow& workflow = *gen.workflow;
  const int num_attrs = workflow.catalog()->size();

  const int kRequests = 16;
  std::vector<WorkflowCertificationRequest> requests;
  Rng req_rng(23);
  for (int r = 0; r < kRequests; ++r) {
    WorkflowCertificationRequest req;
    req.gamma = 2;
    req.hidden = Bitset64(num_attrs);
    for (int a = 0; a < num_attrs; ++a) {
      if (req_rng.NextBelow(4) == 0) req.hidden.Set(a);
    }
    requests.push_back(std::move(req));
  }

  WorkflowBatchOptions on, off;
  on.num_threads = 0;
  on.use_task_graph = true;
  on.with_ground_truth = true;
  off = on;
  off.use_task_graph = false;

  WorkflowBatchResult ron, roff;
  // One batch is sub-millisecond on this workload; time `reps` back-to-back
  // batches per round so the measured window dwarfs timer jitter. Warmup
  // first so neither variant pays the first-touch costs.
  const int reps = ShortMode() ? 50 : 1000;
  ron = CertifyWorkflowBatch(workflow, requests, on);
  double on_ms = std::numeric_limits<double>::infinity();
  double off_ms = std::numeric_limits<double>::infinity();
  const int rounds = ShortMode() ? 2 : 6;
  for (int round = 0; round < rounds; ++round) {
    on_ms = std::min(on_ms, TimeMs([&] {
                       for (int i = 0; i < reps; ++i) {
                         ron = CertifyWorkflowBatch(workflow, requests, on);
                       }
                     }));
    off_ms = std::min(off_ms, TimeMs([&] {
                        for (int i = 0; i < reps; ++i) {
                          roff =
                              CertifyWorkflowBatch(workflow, requests, off);
                        }
                      }));
  }
  PV_CHECK_MSG(ron.status.ok() && roff.status.ok(),
               "batch certification failed mid-bench");
  PV_CHECK_MSG(ron.entries.size() == roff.entries.size(),
               "batch entry counts diverged");
  for (size_t r = 0; r < ron.entries.size(); ++r) {
    const WorkflowBatchEntry& x = ron.entries[r];
    const WorkflowBatchEntry& y = roff.entries[r];
    PV_CHECK_MSG(
        x.certificate.certified == y.certificate.certified &&
            x.certificate.module_gammas == y.certificate.module_gammas &&
            x.certificate.required_privatizations ==
                y.certificate.required_privatizations &&
            x.ground_truth_private == y.ground_truth_private,
        "task-graph batch verdicts diverged from the barrier driver");
  }
  PV_CHECK_MSG(ron.stats.checker_calls == roff.stats.checker_calls &&
                   ron.stats.cache_hits == roff.stats.cache_hits,
               "task-graph batch memo stats diverged");
  std::printf(
      "E8 taskgraph batch: requests=%d modules=%d on_ms=%.1f off_ms=%.1f "
      "taskgraph_batch_speedup=%.2f\n",
      kRequests, workflow.num_modules(), on_ms, off_ms,
      off_ms / std::max(on_ms, 1e-6));
}

int Run() {
  SearchRace();
  BatchRace();
  return 0;
}

}  // namespace
}  // namespace provview

int main() { return provview::Run(); }
