// Experiment E1 — possible-worlds semantics (Figure 2, Definitions 1/2,
// Example 2/3) and Proposition 2's doubly-exponential world-count gap.
//
// Reproduces:
//   (a) the worked numbers of the running example: 64 worlds for m1 under
//       V = {a1,a3,a5}, |OUT| = 4 for every input, Γ = 3 when only inputs
//       are hidden;
//   (b) Proposition 2: on the identity→negation chain of one-one modules,
//       |Worlds(R1,V)| = Γ^(2^k) while |Worlds(R,V)| = (Γ!)^(2^k / Γ) —
//       the ratio grows doubly exponentially in k — yet per-input OUT
//       sets (the actual privacy guarantee) are identical.
//   (c) the pruned/interned/parallel engine vs. the naive |Range|^N
//       odometer: identical worlds and OUT sets, >= 5x faster on the
//       largest configurations (the point of the optimized hot path).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/combinatorics.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "generators/families.h"
#include "module/module_library.h"
#include "privacy/possible_worlds.h"
#include "privacy/safe_subset_search.h"
#include "privacy/standalone_privacy.h"
#include "workflow/fig1_workflow.h"
#include "workflow/workflow.h"

using namespace provview;

namespace {

void RunningExampleTable() {
  PrintBanner("E1a: Figure-1 module m1 — views, worlds and OUT sets");
  Fig1Workflow fig = MakeFig1Workflow();
  const Module& m1 = fig.workflow->module(fig.m1_index);
  Relation rel = m1.FullRelation();

  struct Case {
    const char* label;
    std::vector<int> visible;
    const char* paper;
  };
  std::vector<Case> cases = {
      {"V={a1,a3,a5} (Ex. 2/3)", {fig.a1, fig.a3, fig.a5}, "Gamma=4, 64 worlds"},
      {"V={a1,a2,a3} (Ex. 3)", {fig.a1, fig.a2, fig.a3}, "Gamma=4"},
      {"V={a3,a4,a5} (Ex. 3)", {fig.a3, fig.a4, fig.a5}, "Gamma=3"},
      {"V=all", {0, 1, 2, 3, 4}, "Gamma=1"},
      {"V=empty", {}, "Gamma=8"},
  };
  TablePrinter t({"view", "Gamma (Alg 2)", "worlds", "min|OUT| (brute)",
                  "paper"});
  for (const Case& c : cases) {
    Bitset64 v = Bitset64::Of(7, c.visible);
    StandaloneWorlds worlds =
        EnumerateStandaloneWorlds(rel, m1.inputs(), m1.outputs(), v);
    t.NewRow()
        .AddCell(c.label)
        .AddCell(MaxStandaloneGamma(rel, m1.inputs(), m1.outputs(), v))
        .AddCell(worlds.num_worlds)
        .AddCell(worlds.MinOutSize())
        .AddCell(c.paper);
  }
  t.Print();
}

void Prop2Table() {
  PrintBanner(
      "E1b: Proposition 2 — world counts on the one-one chain (Gamma=2)");
  TablePrinter t({"k", "standalone worlds", "closed form G^(2^k)",
                  "workflow worlds", "closed form (G!)^(2^k/G)",
                  "ratio", "min|OUT| standalone", "min|OUT| workflow"});
  const int64_t gamma = 2;
  for (int k = 1; k <= 2; ++k) {
    Prop2Chain chain = MakeProp2Chain(k);
    const Module& m1 = chain.workflow->module(0);
    // Hide log2(gamma) = 1 intermediate attribute (an output of m1).
    Bitset64 hidden(3 * k);
    hidden.Set(k);  // first middle attribute
    Bitset64 visible = hidden.Complement();
    StandaloneWorlds s = EnumerateStandaloneWorlds(
        m1.FullRelation(), m1.inputs(), m1.outputs(), visible);
    WorkflowWorlds w = EnumerateWorkflowWorlds(*chain.workflow, visible, {});
    int64_t sa_closed = SaturatingPow(gamma, 1 << k);
    int64_t wf_closed = SaturatingPow(2 /* = Gamma! */, (1 << k) / 2);
    t.NewRow()
        .AddCell(k)
        .AddCell(s.num_worlds)
        .AddCell(sa_closed)
        .AddCell(w.num_distinct_relations)
        .AddCell(wf_closed)
        .AddCell(static_cast<double>(s.num_worlds) /
                     static_cast<double>(w.num_distinct_relations),
                 1)
        .AddCell(s.MinOutSize())
        .AddCell(w.MinOutSize(0));
  }
  // Beyond enumeration reach, the closed forms show the doubly-exponential
  // growth the proposition proves.
  for (int k = 3; k <= 5; ++k) {
    int64_t sa_closed = SaturatingPow(gamma, 1 << k);
    int64_t wf_closed = SaturatingPow(2, (1 << k) / 2);
    t.NewRow()
        .AddCell(std::to_string(k) + "*")
        .AddCell("-")
        .AddCell(sa_closed)
        .AddCell("-")
        .AddCell(wf_closed)
        .AddCell(static_cast<double>(sa_closed) /
                     static_cast<double>(wf_closed),
                 1)
        .AddCell("2")
        .AddCell("2");
  }
  t.Print();
  std::cout << "  (* closed form only; rows verified by enumeration for "
               "k <= 2. Privacy — min|OUT| — is identical in both world "
               "families, as Lemma 1 proves.)\n";
}

// --- E1c: naive odometer vs. pruned/interned/parallel engine. ---

struct SpeedupCase {
  const char* label;
  int ki, ko;
  std::vector<int> out_doms;  // domain size per output
  uint64_t seed;
};

// Wall time of `fn` (min of `reps` runs), in milliseconds.
template <typename Fn>
double TimeMs(int reps, const Fn& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.ElapsedMillis());
  }
  return best;
}

// Timer for the close A/B races (E1f seq vs sharded). On a single-core host
// both variants run the same single-threaded code, so any wall-clock
// difference is preemption by neighboring processes — the process-CPU clock
// is the honest measure of the work. Multi-core hosts keep wall time: there
// the race measures parallel overlap, which CPU time would hide.
double RaceClockMs() {
  if (std::thread::hardware_concurrency() > 1) {
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return ts.tv_sec * 1e3 + ts.tv_nsec / 1e6;
  }
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return ts.tv_sec * 1e3 + ts.tv_nsec / 1e6;
}

template <typename Fn>
double RaceTimeMs(const Fn& fn) {
  const double t0 = RaceClockMs();
  fn();
  return RaceClockMs() - t0;
}

void SpeedupTable() {
  PrintBanner(
      "E1c: pruned+interned+parallel engine vs naive |Range|^N odometer");
  // Random modules; one input and one output hidden (the interesting regime:
  // partial visibility). The last rows are the largest configurations the
  // naive engine can still walk in reasonable time.
  std::vector<SpeedupCase> cases = {
      {"ki=3 ko=2 bool", 3, 2, {2, 2}, 42},
      {"ki=4 ko=1 bool", 4, 1, {2}, 7},
      {"ki=3 ko=2 dom(3,2)", 3, 2, {3, 2}, 13},
      {"ki=3 ko=2 dom(3,3)", 3, 2, {3, 3}, 99},
  };
  TablePrinter t({"config", "naive cand", "pruned cand", "worlds",
                  "naive ms", "opt ms", "speedup"});
  double min_speedup = 1e100;
  for (const SpeedupCase& c : cases) {
    auto catalog = std::make_shared<AttributeCatalog>();
    std::vector<AttrId> in, out;
    for (int i = 0; i < c.ki; ++i) {
      in.push_back(catalog->Add("i" + std::to_string(i)));
    }
    for (int o = 0; o < c.ko; ++o) {
      out.push_back(catalog->Add("o" + std::to_string(o),
                                 c.out_doms[static_cast<size_t>(o)]));
    }
    Rng rng(c.seed);
    ModulePtr m = MakeRandomFunction("m", catalog, in, out, &rng);
    Relation rel = m->FullRelation();
    Bitset64 visible = Bitset64::All(catalog->size());
    visible.Reset(in[0]);   // hide one input
    visible.Reset(out[0]);  // and one output

    const int64_t naive_budget = int64_t{1} << 32;
    StandaloneWorlds naive, fast;
    // One rep is plenty once the naive walk takes seconds.
    const int naive_reps = SaturatingPow(m->RangeSize(), 1 << c.ki) > 2000000
                               ? 1
                               : 3;
    double naive_ms = TimeMs(naive_reps, [&] {
      naive = EnumerateStandaloneWorldsNaive(rel, m->inputs(), m->outputs(),
                                             visible, naive_budget);
    });
    EnumerationOptions opts;
    opts.max_candidates = naive_budget;
    opts.num_threads = 0;  // auto: use whatever cores the host has
    double opt_ms = TimeMs(3, [&] {
      fast = EnumerateStandaloneWorlds(rel, m->inputs(), m->outputs(),
                                       visible, opts);
    });
    PV_CHECK_MSG(naive.num_worlds == fast.num_worlds &&
                     naive.out_sets == fast.out_sets,
                 "optimized engine diverged from naive on " << c.label);
    double speedup = naive_ms / std::max(opt_ms, 1e-6);
    min_speedup = std::min(min_speedup, speedup);
    t.NewRow()
        .AddCell(c.label)
        .AddCell(fast.naive_candidates)
        .AddCell(fast.pruned_candidates)
        .AddCell(fast.num_worlds)
        .AddCell(naive_ms, 2)
        .AddCell(opt_ms, 2)
        .AddCell(speedup, 1);
  }
  t.Print();
  std::cout << "  min speedup " << min_speedup
            << "x (acceptance target: >= 5x on the largest configs; "
               "worlds and OUT sets verified identical per row)\n";
}

// --- E1d: naive joint odometer vs. pruned/sharded workflow engine. ---

struct WorkflowCase {
  std::string label;
  const Workflow* workflow = nullptr;
  Bitset64 visible;
  std::vector<int> fixed_modules;
};

void WorkflowSpeedupTable() {
  PrintBanner(
      "E1d: pruned+sharded workflow engine vs naive joint odometer "
      "(E-family instances)");
  Rng rng(2024);
  // The E-family workloads: Proposition 2's identity→negation chain and
  // both Example-7 public-module chains, at the largest size (k = 2, joint
  // space 4^4 x 4^4 = 65536) the naive reference can still walk.
  Prop2Chain prop2 = MakeProp2Chain(2);
  Bitset64 prop2_visible = Bitset64::Of(6, {2}).Complement();  // hide y0

  Example7Chain e7_in = MakeExample7Chain(2, &rng);
  Bitset64 e7_in_visible(e7_in.catalog->size());
  {
    Bitset64 hidden(e7_in.catalog->size());
    for (AttrId id : e7_in.workflow->module(e7_in.bijection_index).inputs()) {
      hidden.Set(id);
    }
    e7_in_visible = hidden.Complement();
  }

  Example7OutputChain e7_out = MakeExample7OutputChain(2, &rng);
  Bitset64 e7_out_visible(e7_out.catalog->size());
  {
    Bitset64 hidden(e7_out.catalog->size());
    for (AttrId id :
         e7_out.workflow->module(e7_out.bijection_index).outputs()) {
      hidden.Set(id);
    }
    e7_out_visible = hidden.Complement();
  }

  std::vector<WorkflowCase> cases;
  cases.push_back({"Prop2 chain k=2, hide y0", prop2.workflow.get(),
                   prop2_visible, {}});
  cases.push_back({"Ex7 const->bij k=2, hide mid, free", e7_in.workflow.get(),
                   e7_in_visible, {}});
  cases.push_back({"Ex7 bij->inv k=2, hide mid, free", e7_out.workflow.get(),
                   e7_out_visible, {}});

  TablePrinter t({"config", "naive cand", "pruned cand", "fn choices",
                  "naive ms", "opt ms", "speedup"});
  double min_speedup = 1e100;
  for (const WorkflowCase& c : cases) {
    const int64_t budget = int64_t{1} << 32;
    WorkflowWorlds naive, fast;
    double naive_ms = TimeMs(1, [&] {
      naive = EnumerateWorkflowWorldsNaive(*c.workflow, c.visible,
                                           c.fixed_modules, budget);
    });
    std::shared_ptr<const WorkflowTables> tables =
        BuildWorkflowTables(*c.workflow);
    WorkflowEnumerationOptions opts;
    opts.max_candidates = budget;
    opts.num_threads = 0;  // auto: use whatever cores the host has
    double opt_ms = TimeMs(3, [&] {
      fast = EnumerateWorkflowWorlds(*tables, c.visible, c.fixed_modules,
                                     opts);
    });
    PV_CHECK_MSG(naive.num_function_choices == fast.num_function_choices &&
                     naive.num_distinct_relations ==
                         fast.num_distinct_relations &&
                     naive.out_sets == fast.out_sets,
                 "workflow engine diverged from naive on " << c.label);
    double speedup = naive_ms / std::max(opt_ms, 1e-6);
    min_speedup = std::min(min_speedup, speedup);
    t.NewRow()
        .AddCell(c.label)
        .AddCell(fast.naive_candidates)
        .AddCell(fast.pruned_candidates)
        .AddCell(fast.num_function_choices)
        .AddCell(naive_ms, 2)
        .AddCell(opt_ms, 2)
        .AddCell(speedup, 1);
  }
  t.Print();
  std::cout << "  workflow min speedup " << min_speedup
            << "x (acceptance target: >= 20x on the E-family instances; "
               "function choices, distinct relations and OUT sets verified "
               "identical per row)\n";
}

// --- E1e: streaming certification past the 2^22 materialization wall. ---

// PODS_BENCH_SHORT=1 shrinks the streamed spaces (CI smoke); the full run
// uses >2^22-row instances the eager path refuses outright.
bool ShortMode() { return std::getenv("PODS_BENCH_SHORT") != nullptr; }

// --- E1f: feasible-set fixpoint on deep workflows + sharded lattice. ---

struct DeepCase {
  std::string label;
  std::shared_ptr<const WorkflowTables> tables;
  Bitset64 visible;
};

void FixpointSpeedupTable() {
  PrintBanner(
      "E1f: feasible-set fixpoint engine vs determined-input engine "
      "(>=4-stage workflows)");
  Rng rng(612);
  // The generated workflows must outlive their tables (WorkflowTables
  // borrows the Workflow).
  // 4-stage one-one chain, 2 bits per layer, hide layer 3 (the inputs of
  // the last stage): the fixpoint forces stages 1-2 through the visible
  // layers and prunes stage 3 against the view; the determined-input engine
  // walks stages 2-4 at full range.
  OneOneChain chain = MakeOneOneChain(4, 2, &rng);
  // Diamond with tail (longest path 4 modules), hide the sink's outputs:
  // both branches and the source get forced, the sink prunes, the tail is
  // walked by both engines.
  DiamondWorkflow dia = MakeDiamondWorkflow(1, /*with_tail=*/true, &rng);

  std::vector<DeepCase> cases;
  {
    Bitset64 hidden(chain.catalog->size());
    for (AttrId id : chain.layer_attrs[3]) hidden.Set(id);
    cases.push_back({"chain 4-stage k=2, hide layer 3",
                     BuildWorkflowTables(*chain.workflow),
                     hidden.Complement()});
  }
  {
    Bitset64 hidden(dia.catalog->size());
    for (AttrId id : dia.y) hidden.Set(id);
    cases.push_back({"diamond k=1 + tail, hide sink out",
                     BuildWorkflowTables(*dia.workflow),
                     hidden.Complement()});
  }

  TablePrinter t({"config", "off walked", "on walked", "fn choices",
                  "off ms", "on ms", "speedup"});
  double min_speedup = 1e100;
  for (const DeepCase& c : cases) {
    WorkflowEnumerationOptions on, off;
    on.max_candidates = off.max_candidates = int64_t{1} << 33;
    on.num_threads = off.num_threads = 0;  // auto
    off.use_feasible_sets = false;
    WorkflowWorlds won, woff;
    double off_ms = TimeMs(1, [&] {
      woff = EnumerateWorkflowWorlds(*c.tables, c.visible, {}, off);
    });
    double on_ms = TimeMs(3, [&] {
      won = EnumerateWorkflowWorlds(*c.tables, c.visible, {}, on);
    });
    PV_CHECK_MSG(won.num_function_choices == woff.num_function_choices &&
                     won.num_distinct_relations ==
                         woff.num_distinct_relations &&
                     won.out_sets == woff.out_sets,
                 "fixpoint engine diverged from the base engine on "
                     << c.label);
    double speedup = off_ms / std::max(on_ms, 1e-6);
    min_speedup = std::min(min_speedup, speedup);
    t.NewRow()
        .AddCell(c.label)
        .AddCell(woff.pruned_candidates)
        .AddCell(won.pruned_candidates)
        .AddCell(won.num_function_choices)
        .AddCell(off_ms, 2)
        .AddCell(on_ms, 2)
        .AddCell(speedup, 1);
  }
  t.Print();
  std::cout << "  deep min speedup " << min_speedup
            << "x (acceptance target: >= 5x on >=4-stage shapes; function "
               "choices, distinct relations and OUT sets verified identical "
               "per row)\n";
}

void ShardedSubsetSearchTable() {
  PrintBanner("E1f: sharded subset-lattice search scaling");
  // k = 24 attributes (12 in / 12 out, 4096-row domain) in the full run —
  // past the old k <= 20 wall; short mode stays at k = 20 for CI smoke.
  const int half = ShortMode() ? 10 : 12;
  auto catalog = std::make_shared<AttributeCatalog>();
  std::vector<AttrId> in, out;
  for (int i = 0; i < half; ++i) {
    in.push_back(catalog->Add("i" + std::to_string(i)));
  }
  for (int o = 0; o < half; ++o) {
    out.push_back(catalog->Add("o" + std::to_string(o)));
  }
  Rng rng(3);
  ModulePtr m = MakeRandomFunction("wide", catalog, in, out, &rng);
  const int64_t gamma = 4;

  SafeSearchStats seq_stats, sharded_stats;
  SubsetSearchOptions seq, sharded;
  seq.num_threads = 1;
  sharded.num_threads = 0;  // auto: use whatever cores the host has
  std::vector<Bitset64> a, b;
  // Interleaved min-of-N: alternating the two variants and keeping each
  // one's best round factors out drift (thermal, page cache, neighbors), so
  // on a single-core host — where both runs are the same sequential walk —
  // the ratio lands at ~1.0 instead of reporting scheduling noise.
  const int rounds = ShortMode() ? 1 : 3;
  {
    // Untimed warmup: first-touch costs (relation materialization, page
    // cache, allocator arenas) must not be billed to the first variant.
    SafeSearchStats s;
    a = MinimalSafeHiddenSets(*m, gamma, &s, Module::kDefaultMaterializeRows,
                              seq);
  }
  double seq_ms = std::numeric_limits<double>::infinity();
  double sharded_ms = std::numeric_limits<double>::infinity();
  for (int round = 0; round < rounds; ++round) {
    seq_ms = std::min(seq_ms, RaceTimeMs([&] {
                        SafeSearchStats s;
                        a = MinimalSafeHiddenSets(
                            *m, gamma, &s, Module::kDefaultMaterializeRows,
                            seq);
                        seq_stats = s;
                      }));
    sharded_ms = std::min(sharded_ms, RaceTimeMs([&] {
                            SafeSearchStats s;
                            b = MinimalSafeHiddenSets(
                                *m, gamma, &s,
                                Module::kDefaultMaterializeRows, sharded);
                            sharded_stats = s;
                          }));
  }
  PV_CHECK_MSG(a == b, "sharded subset search diverged from sequential");
  PV_CHECK_MSG(seq_stats.subsets_examined == sharded_stats.subsets_examined,
               "sharded search examined a different lattice");
  const double speedup = seq_ms / std::max(sharded_ms, 1e-6);
  std::cout << "  k=" << 2 * half << " gamma=" << gamma << ": "
            << seq_stats.subsets_examined << " subsets examined, "
            << a.size() << " minimal safe sets, "
            << seq_stats.checker_calls << " checker calls (seq)\n";
  // Two-decimal speedup: min-of-N interleaved timing converges the two
  // variants to the same floor on single-core hosts, and sub-percent timer
  // jitter must not read as a regression.
  char line[160];
  std::snprintf(line, sizeof(line),
                "E1f sharded subset search: k=%d minimal_sets=%zu "
                "seq_ms=%.1f sharded_ms=%.1f sharded_speedup=%.2f\n",
                2 * half, a.size(), seq_ms, sharded_ms, speedup);
  std::cout << line;
}

void StreamingStandaloneTable() {
  PrintBanner(
      "E1e: streaming certification past the 2^22 materialization wall");
  // A module with num_in boolean inputs: |Dom| = 2^num_in rows. In the full
  // run num_in = 23, one row past what FullRelation / the eager Algorithm-2
  // path will materialize (the 2^22 guard); the streaming supplier derives
  // rows from the function in blocks and certifies anyway.
  const int num_in = ShortMode() ? 19 : 23;
  auto catalog = std::make_shared<AttributeCatalog>();
  std::vector<AttrId> in, out;
  for (int i = 0; i < num_in; ++i) {
    in.push_back(catalog->Add("i" + std::to_string(i)));
  }
  out.push_back(catalog->Add("o0", 4));
  out.push_back(catalog->Add("o1"));
  auto m = std::make_unique<LambdaModule>(
      "wide", catalog, in, out, [num_in](const Tuple& x) {
        int32_t sum = 0, parity = 0;
        for (int i = 0; i < num_in; ++i) {
          sum += x[static_cast<size_t>(i)];
          if (i < num_in / 2) parity ^= x[static_cast<size_t>(i)];
        }
        return Tuple{sum & 3, parity};
      });
  // Hide the first half of the inputs and output o1: the adversary sees a
  // 2^(num_in - num_in/2) * 4 projection of a 2^num_in-row relation.
  Bitset64 visible = Bitset64::All(catalog->size());
  for (int i = 0; i < num_in / 2; ++i) visible.Reset(in[static_cast<size_t>(i)]);
  visible.Reset(out[1]);

  const int64_t dom = m->DomainSize();
  const bool past_wall = dom > Module::kDefaultMaterializeRows;
  // Force the streaming path in short mode (where the shrunken domain would
  // materialize); the full run exercises the default threshold for real.
  const int64_t threshold = past_wall ? Module::kDefaultMaterializeRows : 0;
  Stopwatch sw;
  const int64_t gamma = MaxStandaloneGamma(*m, visible, threshold);
  const double stream_ms = sw.ElapsedMillis();
  PV_CHECK_MSG(gamma >= 1, "streaming certification returned no privacy");
  std::cout << "  module domain " << dom << " rows ("
            << (past_wall ? "past" : "below") << " the 2^22 eager wall"
            << (past_wall ? ": FullRelation would refuse" : ", short mode")
            << ")\n"
            << "  streaming Algorithm 2: Gamma = " << gamma << " in "
            << stream_ms << " ms, memory bounded by the visible projection\n";
  std::cout << "E1e standalone: rows=" << dom << " gamma=" << gamma
            << " stream_ms=" << stream_ms << "\n";
}

void StreamingWorkflowTable() {
  // A 3-module chain over num_init boolean initial inputs: the execution
  // log has 2^num_init rows. The full run streams a >2^22-execution log
  // through BuildWorkflowTables in chunk-sized blocks (aggregates only);
  // the eager build would refuse the space outright.
  const int num_init = ShortMode() ? 19 : 23;
  auto catalog = std::make_shared<AttributeCatalog>();
  std::vector<AttrId> x;
  for (int i = 0; i < num_init; ++i) {
    x.push_back(catalog->Add("x" + std::to_string(i)));
  }
  AttrId t0 = catalog->Add("t0");
  AttrId t1 = catalog->Add("t1");
  AttrId o = catalog->Add("o");
  const int split = num_init / 2;
  Workflow wf(catalog);
  wf.AddModule(MakeParity(
      "m1", catalog, std::vector<AttrId>(x.begin(), x.begin() + split), t0));
  wf.AddModule(MakeAnd(
      "m2", catalog, std::vector<AttrId>(x.begin() + split, x.end()), t1));
  wf.AddModule(MakeParity("m3", catalog, {t0, t1}, o));
  PV_CHECK(wf.Validate().ok());

  WorkflowTablesOptions opts;
  opts.max_executions = int64_t{1} << 26;
  opts.chunk_executions = int64_t{1} << 16;
  if (ShortMode()) opts.materialize_threshold = 0;  // force the streamed scan
  opts.num_threads = 0;  // auto: use whatever cores the host has
  Stopwatch sw;
  std::shared_ptr<const WorkflowTables> tables = BuildWorkflowTables(wf, opts);
  const double stream_ms = sw.ElapsedMillis();
  PV_CHECK_MSG(!tables->log_materialized,
               "streamed build unexpectedly materialized the log");
  int64_t distinct_codes = 0;
  for (const auto& codes : tables->orig_input_codes) {
    distinct_codes += static_cast<int64_t>(codes.size());
  }
  std::cout << "  execution log " << tables->num_execs
            << " rows streamed in 2^16-execution chunks, "
            << distinct_codes
            << " distinct per-module input codes aggregated\n";
  std::cout << "E1e workflow: execs=" << tables->num_execs
            << " stream_ms=" << stream_ms << "\n";
}

}  // namespace

int main() {
  Stopwatch sw;
  RunningExampleTable();
  Prop2Table();
  SpeedupTable();
  WorkflowSpeedupTable();
  StreamingStandaloneTable();
  StreamingWorkflowTable();
  FixpointSpeedupTable();
  ShardedSubsetSearchTable();
  std::cout << "\n[bench_possible_worlds done in " << sw.ElapsedSeconds()
            << "s]\n";
  return 0;
}
