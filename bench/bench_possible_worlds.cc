// Experiment E1 — possible-worlds semantics (Figure 2, Definitions 1/2,
// Example 2/3) and Proposition 2's doubly-exponential world-count gap.
//
// Reproduces:
//   (a) the worked numbers of the running example: 64 worlds for m1 under
//       V = {a1,a3,a5}, |OUT| = 4 for every input, Γ = 3 when only inputs
//       are hidden;
//   (b) Proposition 2: on the identity→negation chain of one-one modules,
//       |Worlds(R1,V)| = Γ^(2^k) while |Worlds(R,V)| = (Γ!)^(2^k / Γ) —
//       the ratio grows doubly exponentially in k — yet per-input OUT
//       sets (the actual privacy guarantee) are identical.
#include <cmath>
#include <iostream>

#include "common/combinatorics.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "generators/families.h"
#include "privacy/possible_worlds.h"
#include "privacy/standalone_privacy.h"
#include "workflow/fig1_workflow.h"

using namespace provview;

namespace {

void RunningExampleTable() {
  PrintBanner("E1a: Figure-1 module m1 — views, worlds and OUT sets");
  Fig1Workflow fig = MakeFig1Workflow();
  const Module& m1 = fig.workflow->module(fig.m1_index);
  Relation rel = m1.FullRelation();

  struct Case {
    const char* label;
    std::vector<int> visible;
    const char* paper;
  };
  std::vector<Case> cases = {
      {"V={a1,a3,a5} (Ex. 2/3)", {fig.a1, fig.a3, fig.a5}, "Gamma=4, 64 worlds"},
      {"V={a1,a2,a3} (Ex. 3)", {fig.a1, fig.a2, fig.a3}, "Gamma=4"},
      {"V={a3,a4,a5} (Ex. 3)", {fig.a3, fig.a4, fig.a5}, "Gamma=3"},
      {"V=all", {0, 1, 2, 3, 4}, "Gamma=1"},
      {"V=empty", {}, "Gamma=8"},
  };
  TablePrinter t({"view", "Gamma (Alg 2)", "worlds", "min|OUT| (brute)",
                  "paper"});
  for (const Case& c : cases) {
    Bitset64 v = Bitset64::Of(7, c.visible);
    StandaloneWorlds worlds =
        EnumerateStandaloneWorlds(rel, m1.inputs(), m1.outputs(), v);
    t.NewRow()
        .AddCell(c.label)
        .AddCell(MaxStandaloneGamma(rel, m1.inputs(), m1.outputs(), v))
        .AddCell(worlds.num_worlds)
        .AddCell(worlds.MinOutSize())
        .AddCell(c.paper);
  }
  t.Print();
}

void Prop2Table() {
  PrintBanner(
      "E1b: Proposition 2 — world counts on the one-one chain (Gamma=2)");
  TablePrinter t({"k", "standalone worlds", "closed form G^(2^k)",
                  "workflow worlds", "closed form (G!)^(2^k/G)",
                  "ratio", "min|OUT| standalone", "min|OUT| workflow"});
  const int64_t gamma = 2;
  for (int k = 1; k <= 2; ++k) {
    Prop2Chain chain = MakeProp2Chain(k);
    const Module& m1 = chain.workflow->module(0);
    // Hide log2(gamma) = 1 intermediate attribute (an output of m1).
    Bitset64 hidden(3 * k);
    hidden.Set(k);  // first middle attribute
    Bitset64 visible = hidden.Complement();
    StandaloneWorlds s = EnumerateStandaloneWorlds(
        m1.FullRelation(), m1.inputs(), m1.outputs(), visible);
    WorkflowWorlds w = EnumerateWorkflowWorlds(*chain.workflow, visible, {});
    int64_t sa_closed = SaturatingPow(gamma, 1 << k);
    int64_t wf_closed = SaturatingPow(2 /* = Gamma! */, (1 << k) / 2);
    t.NewRow()
        .AddCell(k)
        .AddCell(s.num_worlds)
        .AddCell(sa_closed)
        .AddCell(w.num_distinct_relations)
        .AddCell(wf_closed)
        .AddCell(static_cast<double>(s.num_worlds) /
                     static_cast<double>(w.num_distinct_relations),
                 1)
        .AddCell(s.MinOutSize())
        .AddCell(w.MinOutSize(0));
  }
  // Beyond enumeration reach, the closed forms show the doubly-exponential
  // growth the proposition proves.
  for (int k = 3; k <= 5; ++k) {
    int64_t sa_closed = SaturatingPow(gamma, 1 << k);
    int64_t wf_closed = SaturatingPow(2, (1 << k) / 2);
    t.NewRow()
        .AddCell(std::to_string(k) + "*")
        .AddCell("-")
        .AddCell(sa_closed)
        .AddCell("-")
        .AddCell(wf_closed)
        .AddCell(static_cast<double>(sa_closed) /
                     static_cast<double>(wf_closed),
                 1)
        .AddCell("2")
        .AddCell("2");
  }
  t.Print();
  std::cout << "  (* closed form only; rows verified by enumeration for "
               "k <= 2. Privacy — min|OUT| — is identical in both world "
               "families, as Lemma 1 proves.)\n";
}

}  // namespace

int main() {
  Stopwatch sw;
  RunningExampleTable();
  Prop2Table();
  std::cout << "\n[bench_possible_worlds done in " << sw.ElapsedSeconds()
            << "s]\n";
  return 0;
}
