// Experiment E7 — Theorem 7: γ-bounded data sharing.
//
// (a) The per-module greedy is a (γ+1)-approximation: sweep γ and measure
//     greedy/OPT against the γ+1 budget; the ratio must degrade as data
//     sharing grows (at γ = Ω(n), Example 5 shows it reaches Ω(n)).
// (b) APX-hardness already at γ = 1: the cubic-vertex-cover reduction
//     (Appendix B.6.2) maps OPT(VC) exactly — solved on both sides.
#include <algorithm>
#include <iostream>

#include "common/table_printer.h"
#include "generators/requirement_gen.h"
#include "reductions/to_secure_view.h"
#include "secureview/feasibility.h"
#include "secureview/solvers.h"

using namespace provview;

int main() {
  PrintBanner("E7a: greedy-per-module ratio vs data-sharing bound (Thm 7)");
  TablePrinter t({"gamma bound", "gamma actual", "OPT", "greedy",
                  "greedy/OPT", "budget gamma+1", "coverage/OPT"});
  for (int gamma : {1, 2, 3, 4, 6}) {
    double ratio_sum = 0, cov_sum = 0;
    int count = 0;
    int gamma_actual = 0;
    double opt_sum = 0, greedy_sum = 0;
    for (int seed = 0; seed < 4; ++seed) {
      Rng rng(static_cast<uint64_t>(gamma) * 31 + static_cast<uint64_t>(seed));
      RandomInstanceOptions opt;
      opt.kind = ConstraintKind::kCardinality;
      opt.num_modules = 10;
      opt.max_inputs = 3;
      opt.max_outputs = 2;
      opt.gamma_bound = gamma;
      opt.reuse_probability = gamma == 1 ? 0.0 : 0.85;
      SecureViewInstance inst = MakeRandomInstance(opt, &rng);
      gamma_actual = std::max(gamma_actual, inst.DataSharingDegree());

      SvResult exact = SolveExact(inst);
      PV_CHECK_MSG(exact.status.ok(), exact.status.ToString());
      SvResult greedy = SolveGreedyPerModule(inst);
      SvResult coverage = SolveGreedyCoverage(inst);
      PV_CHECK(IsFeasible(inst, greedy.solution));
      // Theorem 7 guarantee.
      PV_CHECK_MSG(
          greedy.cost <= (inst.DataSharingDegree() + 1) * exact.cost + 1e-6,
          "(gamma+1) guarantee violated");
      ratio_sum += greedy.cost / exact.cost;
      cov_sum += coverage.cost / exact.cost;
      opt_sum += exact.cost;
      greedy_sum += greedy.cost;
      ++count;
    }
    t.NewRow()
        .AddCell(gamma)
        .AddCell(gamma_actual)
        .AddCell(opt_sum / count, 2)
        .AddCell(greedy_sum / count, 2)
        .AddCell(ratio_sum / count, 3)
        .AddCell(gamma + 1)
        .AddCell(cov_sum / count, 3);
  }
  t.Print();

  PrintBanner(
      "E7b: APX-hardness source at gamma = 1 — cubic vertex cover reduction");
  TablePrinter t2({"vertices", "edges", "OPT(VC)", "OPT(SV)",
                   "paper: |E|+OPT(VC)", "match"});
  for (int n : {6, 8, 10, 12, 14}) {
    Rng rng(static_cast<uint64_t>(n) * 7 + 1);
    Graph g = RandomCubicGraph(n, &rng);
    VertexCoverResult vc = SolveVertexCoverExact(g);
    PV_CHECK(vc.status.ok());
    VertexCoverCardReduction red = ReduceVertexCoverToCardinality(g);
    PV_CHECK(red.instance.DataSharingDegree() <= 1);
    SvResult sv = SolveExact(red.instance);
    PV_CHECK(sv.status.ok());
    bool match =
        std::abs(sv.cost - (g.num_edges() + vc.cost)) < 1e-6;
    t2.NewRow()
        .AddCell(n)
        .AddCell(g.num_edges())
        .AddCell(vc.cost)
        .AddCell(sv.cost, 1)
        .AddCell(static_cast<int64_t>(g.num_edges() + vc.cost))
        .AddCell(match ? "yes" : "NO");
    PV_CHECK_MSG(match, "B.6.2 reduction equality failed");
  }
  t2.Print();
  std::cout << "  (Secure-View stays NP-hard even with zero data sharing: "
               "its optimum tracks |E| + OPT(VC) exactly.)\n";
  return 0;
}
