// Experiment E5 — Theorem 5: the Figure-3 LP relaxation + Algorithm-1
// randomized rounding is an O(log n)-approximation for Secure-View with
// cardinality constraints in all-private workflows.
//
// Sweeps the module count n over random instances, solving each with:
//   - the exact ILP (OPT),
//   - Algorithm 1 (LP + randomized rounding + B_i^min repair),
//   - the (γ+1) per-module greedy and the coverage greedy.
// Reports measured approximation ratios against OPT and against the
// Theorem-5 budget c·ln n. The paper proves who wins (LP rounding is never
// worse than O(log n)·OPT); our simulator reproduces the shape: ratios
// stay far below the ln n budget and dominate the greedy on shared-data
// instances.
#include <cmath>
#include <iostream>

#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "generators/requirement_gen.h"
#include "secureview/feasibility.h"
#include "secureview/solvers.h"

using namespace provview;

int main() {
  PrintBanner("E5: LP rounding for cardinality constraints (Theorem 5)");
  TablePrinter t({"n", "seed", "OPT", "LP bound", "Alg1 cost", "Alg1/OPT",
                  "ln n", "greedy/OPT", "coverage/OPT", "ILP ms", "LP ms"});
  double worst_ratio = 0.0;
  for (int n : {6, 10, 14, 18, 22}) {
    for (int seed = 0; seed < 3; ++seed) {
      Rng rng(static_cast<uint64_t>(n) * 1000 + static_cast<uint64_t>(seed));
      RandomInstanceOptions opt;
      opt.kind = ConstraintKind::kCardinality;
      opt.num_modules = n;
      opt.max_inputs = 3;
      opt.max_outputs = 2;
      opt.gamma_bound = 3;
      opt.max_list_length = 3;
      SecureViewInstance inst = MakeRandomInstance(opt, &rng);

      Stopwatch ilp_sw;
      BnbOptions bnb;
      bnb.max_nodes = 20000;
      SvResult exact = SolveExact(inst, bnb);
      double ilp_ms = ilp_sw.ElapsedMillis();
      PV_CHECK_MSG(exact.status.ok() ||
                       exact.status.code() == StatusCode::kTimeout,
                   exact.status.ToString());

      Stopwatch lp_sw;
      RoundingOptions ro;
      ro.seed = static_cast<uint64_t>(seed) + 17;
      SvResult alg1 = SolveByLpRounding(inst, ro);
      double lp_ms = lp_sw.ElapsedMillis();
      PV_CHECK(alg1.status.ok());
      PV_CHECK(IsFeasible(inst, alg1.solution));

      SvResult greedy = SolveGreedyPerModule(inst);
      SvResult coverage = SolveGreedyCoverage(inst);

      double ratio = alg1.cost / exact.cost;
      worst_ratio = std::max(worst_ratio, ratio);
      t.NewRow()
          .AddCell(n)
          .AddCell(seed)
          .AddCell(exact.cost, 2)
          .AddCell(alg1.lower_bound, 2)
          .AddCell(alg1.cost, 2)
          .AddCell(ratio, 3)
          .AddCell(std::log(static_cast<double>(n)), 2)
          .AddCell(greedy.cost / exact.cost, 3)
          .AddCell(coverage.cost / exact.cost, 3)
          .AddCell(ilp_ms, 1)
          .AddCell(lp_ms, 1);
    }
  }
  t.Print();
  std::cout << "  worst Alg1/OPT ratio observed = " << worst_ratio
            << " — well inside the Theorem-5 O(log n) budget.\n";

  // Odd rings: module i needs one of the two shared attributes {a_i,
  // a_{i+1 mod n}} hidden. The LP relaxation sits at n/2 (all x_b = 1/2)
  // while OPT = ceil(n/2) — a genuinely fractional regime where the
  // randomized rounding (not plain thresholding) earns its keep.
  PrintBanner("E5b: odd-ring family — fractional LP, rounding still tight");
  TablePrinter t2({"n (odd)", "LP bound (n/2)", "OPT (ceil n/2)",
                   "Alg1 cost", "Alg1/OPT"});
  for (int n : {5, 9, 13, 17, 21}) {
    SecureViewInstance inst;
    inst.kind = ConstraintKind::kCardinality;
    inst.num_attrs = 2 * n;  // n shared inputs + n private outputs
    inst.attr_cost.assign(static_cast<size_t>(2 * n), 1.0);
    for (int i = 0; i < n; ++i) {
      SvModule m;
      m.name = "ring" + std::to_string(i);
      m.inputs = {i, (i + 1) % n};
      m.outputs = {n + i};
      m.card_options = {CardOption{1, 0}};
      inst.modules.push_back(std::move(m));
    }
    PV_CHECK(inst.Validate().ok());
    SvResult exact = SolveExact(inst);
    PV_CHECK(exact.status.ok());
    RoundingOptions ro;
    ro.seed = static_cast<uint64_t>(n);
    SvResult alg1 = SolveByLpRounding(inst, ro);
    PV_CHECK(alg1.status.ok());
    PV_CHECK(IsFeasible(inst, alg1.solution));
    t2.NewRow()
        .AddCell(n)
        .AddCell(alg1.lower_bound, 2)
        .AddCell(exact.cost, 2)
        .AddCell(alg1.cost, 2)
        .AddCell(alg1.cost / exact.cost, 3);
  }
  t2.Print();
  return 0;
}
