// Ablation experiment — Appendix B.4's justification of the Figure-3
// program. The paper argues that two "simpler" encodings of the
// cardinality Secure-View problem have weak LP relaxations:
//   - dropping the coupling constraints (6)-(7) lets a fractional solution
//     mix incomparable options;
//   - dropping the per-option y/z accounting ("direct" encoding) lets the
//     same x mass pay for every option simultaneously — an Ω(ℓ) gap on
//     lists of near-uniform total weight.
// We measure the LP bound quality (LP / ILP optimum) of all three
// encodings on (a) the crafted near-uniform-list family and (b) random
// instances. The full Figure-3 relaxation must dominate.
#include <iostream>

#include "common/table_printer.h"
#include "generators/requirement_gen.h"
#include "lp/simplex.h"
#include "secureview/ilp_encoding.h"
#include "secureview/solvers.h"

using namespace provview;

namespace {

// One module, |I| = |O| = l, options (j, l+1-j) for j = 1..l: every option
// costs l+1 integrally, but the direct LP satisfies all options at once
// with total mass ≈ 2 (r_j = 1/l spreads the requirement thin).
SecureViewInstance UniformListFamily(int l) {
  SecureViewInstance inst;
  inst.kind = ConstraintKind::kCardinality;
  inst.num_attrs = 2 * l;
  inst.attr_cost.assign(static_cast<size_t>(2 * l), 1.0);
  SvModule m;
  m.name = "wide";
  for (int i = 0; i < l; ++i) m.inputs.push_back(i);
  for (int i = 0; i < l; ++i) m.outputs.push_back(l + i);
  for (int j = 1; j <= l; ++j) {
    m.card_options.push_back(CardOption{j, l + 1 - j});
  }
  inst.modules.push_back(std::move(m));
  PV_CHECK(inst.Validate().ok());
  return inst;
}

double LpBound(const SecureViewInstance& inst, CardEncodingVariant variant) {
  SvEncoding enc = EncodeCardinalityVariant(inst, variant);
  LpSolution s = SolveLp(enc.lp);
  PV_CHECK_MSG(s.status.ok(), s.status.ToString());
  return s.objective;
}

}  // namespace

int main() {
  PrintBanner(
      "Ablation A: near-uniform option lists (B.4's Ω(l) gap for the "
      "direct encoding)");
  TablePrinter t({"l", "ILP OPT", "LP full (Fig 3)", "LP no-coupling",
                  "LP direct", "gap full", "gap direct"});
  for (int l : {2, 4, 6, 8, 10}) {
    SecureViewInstance inst = UniformListFamily(l);
    SvResult exact = SolveExact(inst);
    PV_CHECK(exact.status.ok());
    double full = LpBound(inst, CardEncodingVariant::kFull);
    double nocouple = LpBound(inst, CardEncodingVariant::kNoCoupling);
    double direct = LpBound(inst, CardEncodingVariant::kDirect);
    t.NewRow()
        .AddCell(l)
        .AddCell(exact.cost, 2)
        .AddCell(full, 2)
        .AddCell(nocouple, 2)
        .AddCell(direct, 2)
        .AddCell(exact.cost / full, 2)
        .AddCell(exact.cost / direct, 2);
  }
  t.Print();
  std::cout << "  (The direct encoding's gap grows ~linearly in l; the "
               "Figure-3 encoding stays near-exact — B.4's point.)\n";

  PrintBanner("Ablation B: random instances — bound quality of the three "
              "relaxations");
  TablePrinter t2({"n", "seed", "ILP OPT", "full/OPT", "no-coupling/OPT",
                   "direct/OPT"});
  for (int n : {8, 12, 16}) {
    for (int seed = 0; seed < 3; ++seed) {
      Rng rng(static_cast<uint64_t>(n) * 19 + static_cast<uint64_t>(seed));
      RandomInstanceOptions opt;
      opt.kind = ConstraintKind::kCardinality;
      opt.num_modules = n;
      opt.max_list_length = 3;
      SecureViewInstance inst = MakeRandomInstance(opt, &rng);
      SvResult exact = SolveExact(inst);
      PV_CHECK(exact.status.ok());
      double full = LpBound(inst, CardEncodingVariant::kFull);
      double nocouple = LpBound(inst, CardEncodingVariant::kNoCoupling);
      double direct = LpBound(inst, CardEncodingVariant::kDirect);
      // Relaxation ordering must hold: every ablation is a relaxation of
      // the full program's feasible region projected to x (weaker bound).
      PV_CHECK(full <= exact.cost + 1e-6);
      PV_CHECK(nocouple <= full + 1e-6);
      PV_CHECK(direct <= exact.cost + 1e-6);
      t2.NewRow()
          .AddCell(n)
          .AddCell(seed)
          .AddCell(exact.cost, 2)
          .AddCell(full / exact.cost, 3)
          .AddCell(nocouple / exact.cost, 3)
          .AddCell(direct / exact.cost, 3);
    }
  }
  t2.Print();
  return 0;
}
