// Experiment E10 — Section 5: public modules break standalone composition
// (Example 7), privatization restores it (Theorem 8), and the optimizer
// trades hidden data against privatization cost.
//
// (a) Example 7 measured: ground-truth workflow Γ with the public module
//     visible vs privatized, for both the constant-upstream and the
//     invertible-downstream chains.
// (b) Privatization-cost sweep on the genomics-style chain: as c(m) grows
//     the optimizer shifts from "hide inputs + privatize" to routes that
//     avoid touching public modules.
#include <iostream>

#include "common/table_printer.h"
#include "generators/families.h"
#include "privacy/standalone_privacy.h"
#include "privacy/workflow_privacy.h"
#include "secureview/feasibility.h"
#include "secureview/from_workflow.h"
#include "secureview/solvers.h"

using namespace provview;

int main() {
  PrintBanner("E10a: Example 7 — standalone-safe is not workflow-safe");
  TablePrinter t({"chain", "k", "standalone Gamma", "workflow Gamma (public "
                  "visible)", "workflow Gamma (privatized)"});
  for (int k : {1, 2}) {
    {
      Rng rng(static_cast<uint64_t>(k) * 5 + 1);
      Example7Chain chain = MakeExample7Chain(k, &rng);
      const Module& priv = chain.workflow->module(chain.bijection_index);
      Bitset64 hidden(chain.catalog->size());
      for (AttrId id : priv.inputs()) hidden.Set(id);
      t.NewRow()
          .AddCell("constant -> private")
          .AddCell(k)
          .AddCell(MaxStandaloneGamma(priv, hidden.Complement()))
          .AddCell(GroundTruthWorkflowGamma(*chain.workflow, hidden,
                                            {chain.constant_index}))
          .AddCell(GroundTruthWorkflowGamma(*chain.workflow, hidden, {}));
    }
    {
      Rng rng(static_cast<uint64_t>(k) * 5 + 2);
      Example7OutputChain chain = MakeExample7OutputChain(k, &rng);
      const Module& priv = chain.workflow->module(chain.bijection_index);
      Bitset64 hidden(chain.catalog->size());
      for (AttrId id : priv.outputs()) hidden.Set(id);
      t.NewRow()
          .AddCell("private -> invertible")
          .AddCell(k)
          .AddCell(MaxStandaloneGamma(priv, hidden.Complement()))
          .AddCell(GroundTruthWorkflowGamma(*chain.workflow, hidden,
                                            {chain.invertible_index}))
          .AddCell(GroundTruthWorkflowGamma(*chain.workflow, hidden, {}));
    }
  }
  t.Print();
  std::cout << "  (paper: standalone Gamma = 2^k collapses to 1 while the "
               "public neighbor stays visible; privatization restores it — "
               "Example 7 / Theorem 8.)\n";

  PrintBanner("E10b: privatization-cost sweep (Example 8 economics)");
  TablePrinter t2({"c(privatize)", "OPT cost", "hidden attrs",
                   "privatized modules", "certified"});
  for (double pc : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    Rng rng(9);
    Example7Chain chain = MakeExample7Chain(2, &rng);
    chain.workflow->mutable_module(chain.constant_index)
        ->set_privatization_cost(pc);
    // Attribute costs: intermediates cheap, outputs pricey.
    for (int i = 0; i < chain.k; ++i) {
      chain.catalog->SetCost(chain.k + i, 1.0);       // v (intermediate)
      chain.catalog->SetCost(2 * chain.k + i, 3.0);   // w (final)
    }
    SecureViewInstance inst =
        InstanceFromWorkflow(*chain.workflow, 4, ConstraintKind::kSet);
    SvResult exact = SolveExact(inst);
    PV_CHECK_MSG(exact.status.ok(), exact.status.ToString());
    std::string privatized;
    for (int i : exact.solution.privatized) {
      if (!privatized.empty()) privatized += ", ";
      privatized += chain.workflow->module(i).name();
    }
    if (privatized.empty()) privatized = "(none)";
    t2.NewRow()
        .AddCell(pc, 1)
        .AddCell(exact.cost, 2)
        .AddCell(exact.solution.hidden.ToString())
        .AddCell(privatized)
        .AddCell(VerifySolutionSemantics(*chain.workflow, exact.solution, 4)
                     ? "yes"
                     : "NO");
  }
  t2.Print();
  std::cout << "  (Cheap privatization: hide the private module's inputs "
               "and rename the constant module. Expensive privatization: "
               "the optimum shifts to hiding the private module's own "
               "outputs, which touch no public module.)\n";
  return 0;
}
