// Experiment E4 — Example 5: the union of per-module standalone optima is
// Ω(n) more expensive than the workflow optimum.
//
// On the fan-out family (module m feeding n middle modules feeding m'),
// the standalone union hides {a1, b_1..b_n} (cost n+1) while the optimum
// hides {a2, b_1} (cost 2+ε). The measured ratio must grow linearly in n.
#include <cmath>
#include <iostream>

#include "common/table_printer.h"
#include "generators/families.h"
#include "secureview/feasibility.h"
#include "secureview/solvers.h"

using namespace provview;

int main() {
  PrintBanner("E4: Example-5 family — standalone union vs workflow optimum");
  const double eps = 0.1;
  TablePrinter t({"n", "union cost (paper: n+1)", "OPT (paper: 2+eps)",
                  "ratio", "(n+1)/(2+eps)", "coverage greedy"});
  for (int n : {2, 4, 8, 16, 32, 64, 128, 256, 512}) {
    SecureViewInstance inst = MakeExample5Instance(n, eps);
    SvResult greedy = SolveGreedyPerModule(inst);  // = standalone union
    PV_CHECK(greedy.status.ok());
    PV_CHECK(IsFeasible(inst, greedy.solution));

    // Exact via ILP for moderate n; the optimum is 2 + eps by construction
    // (hide a2 and one b_i) — verified against the ILP where we run it.
    double opt = 2.0 + eps;
    if (n <= 64) {
      SvResult exact = SolveExact(inst);
      PV_CHECK(exact.status.ok());
      PV_CHECK_MSG(std::abs(exact.cost - opt) < 1e-6,
                   "Example-5 optimum mismatch");
      opt = exact.cost;
    }
    SvResult coverage = SolveGreedyCoverage(inst);
    PV_CHECK(IsFeasible(inst, coverage.solution));

    t.NewRow()
        .AddCell(n)
        .AddCell(greedy.cost, 2)
        .AddCell(opt, 2)
        .AddCell(greedy.cost / opt, 2)
        .AddCell((n + 1.0) / (2.0 + eps), 2)
        .AddCell(coverage.cost, 2);
  }
  t.Print();
  std::cout << "  (ratio tracks (n+1)/(2+eps) exactly: the Ω(n) separation "
               "of Example 5. The option-aware coverage greedy escapes the "
               "trap.)\n";
  return 0;
}
