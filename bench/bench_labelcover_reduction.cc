// Experiment E9 — the label-cover hardness sources of Theorem 6 (set
// constraints, Appendix B.5.2) and Theorem 10 (cardinality constraints in
// general workflows, Appendix C.4).
//
// Both reductions preserve the optimum exactly; the set-constraint one
// also lets us watch the ℓ_max-approximation behave on genuinely hard
// (label-cover-shaped) instances.
#include <cmath>
#include <iostream>

#include "common/table_printer.h"
#include "reductions/to_secure_view.h"
#include "secureview/feasibility.h"
#include "secureview/solvers.h"

using namespace provview;

int main() {
  PrintBanner("E9a: label cover -> set-constraint Secure-View (Thm 6)");
  TablePrinter t({"U+U'", "labels", "edges", "OPT(LC)", "OPT(SV)", "match",
                  "l_max", "rounded", "rounded/OPT"});
  struct Shape {
    int left, right, labels, edges, extra;
  };
  for (const Shape& s : std::vector<Shape>{{2, 2, 2, 3, 1},
                                           {2, 3, 3, 5, 1},
                                           {3, 3, 3, 6, 2},
                                           {3, 4, 4, 8, 2},
                                           {4, 4, 4, 10, 2}}) {
    Rng rng(static_cast<uint64_t>(s.left * 100 + s.edges) * 7 + 3);
    LabelCoverInstance lc =
        RandomLabelCover(s.left, s.right, s.labels, s.edges, s.extra, &rng);
    LabelCoverResult lc_opt = SolveLabelCoverExact(lc);
    PV_CHECK(lc_opt.status.ok());
    LabelCoverSetReduction red = ReduceLabelCoverToSet(lc);
    SvResult sv_opt = SolveExact(red.instance);
    PV_CHECK(sv_opt.status.ok());
    bool match = std::abs(sv_opt.cost - lc_opt.cost) < 1e-6;
    PV_CHECK_MSG(match, "B.5.2 reduction equality failed");
    SvResult rounded = SolveByThresholdRounding(red.instance);
    PV_CHECK(rounded.status.ok());
    PV_CHECK(IsFeasible(red.instance, rounded.solution));
    t.NewRow()
        .AddCell(s.left + s.right)
        .AddCell(s.labels)
        .AddCell(static_cast<int64_t>(lc.edges.size()))
        .AddCell(lc_opt.cost)
        .AddCell(sv_opt.cost, 1)
        .AddCell(match ? "yes" : "NO")
        .AddCell(red.instance.MaxListLength())
        .AddCell(rounded.cost, 1)
        .AddCell(rounded.cost / sv_opt.cost, 3);
  }
  t.Print();
  std::cout << "  (l_max here is Θ(|vertices|·|labels|) — the huge lists "
               "are exactly why set constraints resist polylog "
               "approximation, Theorem 6.)\n";

  PrintBanner(
      "E9b: label cover -> GENERAL cardinality Secure-View (Theorem 10)");
  TablePrinter t2({"U+U'", "labels", "edges", "OPT(LC)", "OPT(SV)",
                   "privatizations", "match"});
  for (const Shape& s : std::vector<Shape>{{2, 2, 2, 3, 1},
                                           {2, 3, 2, 4, 1},
                                           {3, 3, 3, 5, 1},
                                           {3, 4, 3, 7, 1}}) {
    Rng rng(static_cast<uint64_t>(s.left * 37 + s.edges) * 11 + 9);
    LabelCoverInstance lc =
        RandomLabelCover(s.left, s.right, s.labels, s.edges, s.extra, &rng);
    LabelCoverResult lc_opt = SolveLabelCoverExact(lc);
    PV_CHECK(lc_opt.status.ok());
    LabelCoverGeneralReduction red = ReduceLabelCoverToGeneral(lc);
    SvResult sv_opt = SolveExact(red.instance);
    PV_CHECK(sv_opt.status.ok());
    bool match = std::abs(sv_opt.cost - lc_opt.cost) < 1e-6;
    PV_CHECK_MSG(match, "C.4 reduction equality failed");
    t2.NewRow()
        .AddCell(s.left + s.right)
        .AddCell(s.labels)
        .AddCell(static_cast<int64_t>(lc.edges.size()))
        .AddCell(lc_opt.cost)
        .AddCell(sv_opt.cost, 1)
        .AddCell(static_cast<int64_t>(sv_opt.solution.privatized.size()))
        .AddCell(match ? "yes" : "NO");
  }
  t2.Print();
  std::cout << "  (Cardinality constraints — O(log n)-approximable in "
               "all-private workflows (E5) — become label-cover-hard once "
               "privatization costs enter, Theorem 10.)\n";
  return 0;
}
