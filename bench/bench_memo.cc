// E9: the shared VerdictCache at work across requests — the daemon's
// steady state, isolated from socket costs.
//
// One random workflow, one WorkflowCacheNamespace bound to a shared
// VerdictCache, and a stream of identical CertifyWorkflowBatch calls (the
// repeated-certification traffic podsd sees). The first batch is the COLD
// run: every verdict is a checker call that settles into the cache. Each
// later batch is a WARM run answering from settled verdicts. Three numbers
// come out, recorded by run_benches.sh into BENCH_possible_worlds.json:
//
//   E9 memo: requests=256 cold_ms=84.1 warm_ms=2.3 cache_batch_speedup=36.56
//   E9 memo: verdict_cache_hit_rate=0.998 cache_bytes=51234
//
//   * cache_batch_speedup — cold batch over min warm batch: what one
//     request-sized unit of traffic gains from verdicts settled by earlier
//     requests (the cross-request reuse the memo bank used to provide
//     per-workflow, now measured through the shared evicting cache).
//   * verdict_cache_hit_rate — fraction of warm-phase memo lookups
//     answered without the Algorithm-2 checker.
//
// Warm results are PV_CHECKed identical to the cold run before any number
// is printed. PODS_BENCH_SHORT=1 shrinks the workflow and round count for
// CI smoke runs.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "generators/random_workflow.h"
#include "privacy/verdict_cache.h"
#include "privacy/workflow_privacy.h"

namespace provview {
namespace {

bool ShortMode() { return std::getenv("PODS_BENCH_SHORT") != nullptr; }

double NowMs() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return ts.tv_sec * 1e3 + ts.tv_nsec / 1e6;
}

void MemoRace() {
  Rng rng(0x6d656d6fu);
  RandomWorkflowOptions options;
  // Wide modules (up to 2^8-row relations) make the cold batch pay real
  // Algorithm-2 row passes; narrow ones would finish in microseconds and
  // turn the speedup ratio into timer noise.
  options.num_modules = ShortMode() ? 4 : 8;
  options.min_inputs = ShortMode() ? 4 : 6;
  options.max_inputs = 8;
  options.max_outputs = 3;
  GeneratedWorkflow g = MakeRandomWorkflow(options, &rng);
  const int universe = g.workflow->catalog()->size();

  // Random hidden-set requests over the used attributes: enough distinct
  // projections to make the cold batch pay real checker time, with repeats
  // so even the cold run exercises intra-batch sharing.
  const int kRequests = ShortMode() ? 96 : 512;
  std::vector<int> used = g.workflow->used_attrs().ToVector();
  std::vector<WorkflowCertificationRequest> requests;
  requests.reserve(static_cast<size_t>(kRequests));
  for (int r = 0; r < kRequests; ++r) {
    Bitset64 hidden(universe);
    for (int a : used) {
      if (rng.NextBernoulli(0.5)) hidden.Set(a);
    }
    requests.push_back(WorkflowCertificationRequest{hidden, 2});
  }

  WorkflowBatchOptions opts;
  opts.num_threads = 1;  // isolate cache reuse from thread scaling

  auto cache = std::make_shared<VerdictCache>();
  WorkflowCacheNamespace verdicts(*g.workflow, cache);

  const double t0 = NowMs();
  const WorkflowBatchResult cold =
      CertifyWorkflowBatch(*g.workflow, requests, opts, &verdicts);
  const double cold_ms = NowMs() - t0;
  PV_CHECK_MSG(cold.status.ok(), "cold batch failed");

  const int kRounds = ShortMode() ? 3 : 8;
  double warm_ms = std::numeric_limits<double>::infinity();
  SafeSearchStats warm_stats;
  for (int round = 0; round < kRounds; ++round) {
    const double w0 = NowMs();
    const WorkflowBatchResult warm =
        CertifyWorkflowBatch(*g.workflow, requests, opts, &verdicts);
    const double ms = NowMs() - w0;
    PV_CHECK_MSG(warm.status.ok(), "warm batch failed");
    for (size_t r = 0; r < requests.size(); ++r) {
      PV_CHECK_MSG(warm.entries[r].certificate.certified ==
                           cold.entries[r].certificate.certified &&
                       warm.entries[r].certificate.module_gammas ==
                           cold.entries[r].certificate.module_gammas,
                   "warm batch diverged from cold batch");
    }
    warm_ms = std::min(warm_ms, ms);
    warm_stats = warm.stats;
  }

  const int64_t warm_lookups =
      warm_stats.checker_calls + warm_stats.cache_hits;
  const double hit_rate =
      warm_lookups == 0 ? 0.0
                        : static_cast<double>(warm_stats.cache_hits) /
                              static_cast<double>(warm_lookups);
  const double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0.0;
  std::printf(
      "E9 memo: requests=%d cold_ms=%.1f warm_ms=%.1f "
      "cache_batch_speedup=%.2f\n",
      kRequests, cold_ms, warm_ms, speedup);
  std::printf("E9 memo: verdict_cache_hit_rate=%.3f cache_bytes=%lld\n",
              hit_rate, static_cast<long long>(cache->bytes_in_use()));
}

}  // namespace
}  // namespace provview

int main() {
  provview::MemoRace();
  return 0;
}
